package eventbus

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"securecloud/internal/cryptbox"
)

func appRoot() cryptbox.Key {
	var k cryptbox.Key
	k[0] = 0xA9
	return k
}

func topicPair(t *testing.T, bus *Bus, topic string) (*Publisher, *Subscriber) {
	t.Helper()
	key, err := TopicKey(appRoot(), topic)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPublisher(bus, topic, key)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSubscriber(bus, topic, key)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

func TestPublishReceive(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "meters/region-1")
	for i := 0; i < 3; i++ {
		if _, err := p.Publish([]byte(fmt.Sprintf("reading-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[0]) != "reading-0" || string(got[2]) != "reading-2" {
		t.Fatalf("received %q", got)
	}
	// Drained: next receive is empty.
	got, err = s.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("drained queue returned messages")
	}
}

func TestFanOut(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "alerts")
	p, _ := NewPublisher(bus, "alerts", key)
	var subs []*Subscriber
	for i := 0; i < 3; i++ {
		s, err := NewSubscriber(bus, "alerts", key)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if _, err := p.Publish([]byte("overload feeder-9")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		got, err := s.Receive()
		if err != nil || len(got) != 1 {
			t.Fatalf("subscriber %d: got %d messages, err %v", i, len(got), err)
		}
	}
}

func TestCiphertextOnBus(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "secrets")
	if _, err := p.Publish([]byte("CONSUMPTION-PROFILE")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	for _, q := range bus.queues["secrets"] {
		for _, m := range q {
			if bytes.Contains(m.Sealed, []byte("CONSUMPTION-PROFILE")) {
				bus.mu.Unlock()
				t.Fatal("plaintext on the bus")
			}
		}
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedMessageRejected(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	for id, q := range bus.queues["t"] {
		q[0].Sealed[5] ^= 1
		bus.queues["t"][id] = q
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("err = %v, want ErrBadSeal", err)
	}
}

func TestCrossTopicReplayRejected(t *testing.T) {
	bus := New()
	keyA, _ := TopicKey(appRoot(), "a")
	pA, _ := NewPublisher(bus, "a", keyA)
	// Subscriber on topic b using the key of topic b — but the bus
	// maliciously moves a's message into b's queue.
	keyB, _ := TopicKey(appRoot(), "b")
	sB, _ := NewSubscriber(bus, "b", keyB)
	if _, err := pA.Publish([]byte("for-a")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	var stolen Message
	// No subscriber on a: publish stored nothing. Re-publish directly.
	bus.mu.Unlock()
	sealed, _ := func() ([]byte, error) {
		box, _ := cryptbox.NewBox(keyA)
		return box.Seal([]byte("for-a"), []byte("topic|a"))
	}()
	stolen = Message{Topic: "b", Seq: 1, Sealed: sealed}
	bus.mu.Lock()
	for id := range bus.queues["b"] {
		bus.queues["b"][id] = append(bus.queues["b"][id], stolen)
	}
	bus.mu.Unlock()
	if _, err := sB.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("cross-topic replay accepted: %v", err)
	}
}

func TestSequenceReplayRejected(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("one")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	var copyMsg Message
	for _, q := range bus.queues["t"] {
		copyMsg = q[0]
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); err != nil {
		t.Fatal(err)
	}
	// Bus replays the same message.
	bus.mu.Lock()
	for id := range bus.queues["t"] {
		bus.queues["t"][id] = append(bus.queues["t"][id], copyMsg)
	}
	bus.mu.Unlock()
	if _, err := s.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("sequence replay accepted: %v", err)
	}
}

func TestTopicKeysIndependent(t *testing.T) {
	a, _ := TopicKey(appRoot(), "a")
	b, _ := TopicKey(appRoot(), "b")
	if a == b {
		t.Fatal("distinct topics derived the same key")
	}
}

func TestWrongKeyCannotRead(t *testing.T) {
	bus := New()
	keyA, _ := TopicKey(appRoot(), "a")
	p, _ := NewPublisher(bus, "a", keyA)
	wrong, _ := TopicKey(appRoot(), "other")
	s, err := NewSubscriber(bus, "a", wrong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Receive(); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("wrong key read message: %v", err)
	}
}

func TestClosedBus(t *testing.T) {
	bus := New()
	p, _ := topicPair(t, bus, "t")
	bus.Close()
	if _, err := p.Publish([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish on closed bus: %v", err)
	}
	key, _ := TopicKey(appRoot(), "t")
	if _, err := NewSubscriber(bus, "t", key); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe on closed bus: %v", err)
	}
}

func TestBackPressure(t *testing.T) {
	bus := New()
	p, _ := topicPair(t, bus, "t")
	for i := 0; i < QueueLimit; i++ {
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	if _, err := p.Publish([]byte("overflow")); !errors.Is(err, ErrBackPres) {
		t.Fatalf("err = %v, want ErrBackPres", err)
	}
}

func TestDepthMonitoring(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	for i := 0; i < 5; i++ {
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := bus.Depth("t"); got != 5 {
		t.Fatalf("Depth = %d, want 5", got)
	}
	if _, err := s.Receive(); err != nil {
		t.Fatal(err)
	}
	if got := bus.Depth("t"); got != 0 {
		t.Fatalf("Depth after drain = %d", got)
	}
}

func TestLeaseAckConsumes(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	for i := 0; i < 3; i++ {
		if _, err := p.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pending, err := s.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 2 {
		t.Fatalf("leased %d, want 2", len(pending))
	}
	// Leased messages are not re-leased until nacked.
	again, err := s.Lease(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 1 {
		t.Fatalf("second lease got %d, want the 1 unleased message", len(again))
	}
	for _, m := range pending {
		if !s.Ack(m.Seq) {
			t.Fatalf("ack %d failed", m.Seq)
		}
	}
	if s.Ack(pending[0].Seq) {
		t.Fatal("double ack succeeded")
	}
	if got := bus.Depth("t"); got != 1 {
		t.Fatalf("Depth = %d after acking 2 of 3", got)
	}
}

func TestNackRedelivers(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("critical-alert")); err != nil {
		t.Fatal(err)
	}
	pending, err := s.Lease(1)
	if err != nil || len(pending) != 1 {
		t.Fatalf("lease: %v, %d", err, len(pending))
	}
	// Consumer crashes before processing: nack.
	if !s.Nack(pending[0].Seq) {
		t.Fatal("nack failed")
	}
	if s.Nack(pending[0].Seq) {
		t.Fatal("double nack succeeded")
	}
	redelivered, err := s.Lease(1)
	if err != nil || len(redelivered) != 1 {
		t.Fatalf("redelivery: %v, %d", err, len(redelivered))
	}
	if string(redelivered[0].Body) != "critical-alert" {
		t.Fatalf("redelivered %q", redelivered[0].Body)
	}
}

func TestLeaseTamperDetected(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	bus.mu.Lock()
	for id, q := range bus.queues["t"] {
		q[0].Sealed[3] ^= 1
		bus.queues["t"][id] = q
	}
	bus.mu.Unlock()
	if _, err := s.Lease(1); !errors.Is(err, ErrBadSeal) {
		t.Fatalf("err = %v, want ErrBadSeal", err)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "t")
	s, _ := NewSubscriber(bus, "t", key)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, _ := NewPublisher(bus, "t", key)
			for i := 0; i < 100; i++ {
				if _, err := p.Publish([]byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	got, err := s.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("received %d of 400", len(got))
	}
}

func TestPublishBatchFanOut(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "batch")
	pub, err := NewPublisher(bus, "batch", key)
	if err != nil {
		t.Fatal(err)
	}
	var subs []*Subscriber
	for i := 0; i < 3; i++ {
		s, err := NewSubscriber(bus, "batch", key)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	bodies := [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")}
	seqs, err := pub.PublishBatch(bodies)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 || seqs[0] != 1 || seqs[3] != 4 {
		t.Fatalf("seqs = %v", seqs)
	}
	for _, s := range subs {
		got, err := s.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 4 || string(got[0]) != "a" || string(got[3]) != "d" {
			t.Fatalf("received %q", got)
		}
	}
	if _, err := pub.PublishBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestPublishBatchBackPressureAllOrNothing(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "bp")
	pub, _ := NewPublisher(bus, "bp", key)
	sub, _ := NewSubscriber(bus, "bp", key)
	for i := 0; i < QueueLimit-1; i++ {
		if _, err := pub.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pub.PublishBatch([][]byte{[]byte("y"), []byte("z")}); !errors.Is(err, ErrBackPres) {
		t.Fatalf("err = %v, want ErrBackPres", err)
	}
	// Nothing from the rejected batch leaked into the queue.
	got, err := sub.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != QueueLimit-1 {
		t.Fatalf("queued %d, want %d", len(got), QueueLimit-1)
	}
}

func TestPollBatchBounded(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "poll")
	pub, _ := NewPublisher(bus, "poll", key)
	sub, _ := NewSubscriber(bus, "poll", key)
	for i := 0; i < 10; i++ {
		if _, err := pub.Publish([]byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	first, err := sub.PollBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 || string(first[0]) != "0" || string(first[2]) != "2" {
		t.Fatalf("first poll = %q", first)
	}
	rest, err := sub.PollBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 7 || string(rest[0]) != "3" {
		t.Fatalf("second poll = %q", rest)
	}
	// Replay protection still active across polls.
	if more, err := sub.PollBatch(5); err != nil || len(more) != 0 {
		t.Fatalf("drained topic returned %q, %v", more, err)
	}
}

// TestUnsubscribePrunesLeases pins the churn leak fix: when a topic's last
// subscriber closes, its queue and lease maps disappear from the bus.
func TestUnsubscribePrunesLeases(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "churn")
	pub, _ := NewPublisher(bus, "churn", key)
	for round := 0; round < 50; round++ {
		sub, err := NewSubscriber(bus, "churn", key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pub.Publish([]byte("m")); err != nil {
			t.Fatal(err)
		}
		if _, err := sub.Lease(1); err != nil { // creates lease bookkeeping
			t.Fatal(err)
		}
		sub.Close()
		sub.Close() // idempotent
	}
	bus.mu.Lock()
	nq, nl := len(bus.queues), len(bus.leased)
	bus.mu.Unlock()
	if nq != 0 || nl != 0 {
		t.Fatalf("after churn: %d queue topics, %d lease topics retained, want 0/0", nq, nl)
	}
	if bus.Depth("churn") != 0 {
		t.Fatalf("depth = %d after last unsubscribe", bus.Depth("churn"))
	}
	// Sequence numbers survive churn: a fresh subscriber still sees
	// monotonically increasing sequences.
	sub, _ := NewSubscriber(bus, "churn", key)
	seq, err := pub.Publish([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 51 {
		t.Fatalf("seq = %d, want 51 (continuity across churn)", seq)
	}
	if got, err := sub.Receive(); err != nil || len(got) != 1 {
		t.Fatalf("fresh subscriber: %q %v", got, err)
	}
}

// TestAckPrunesEmptyLeaseMaps: fully acknowledging a lease leaves no
// residual per-subscriber lease maps behind.
func TestAckPrunesEmptyLeaseMaps(t *testing.T) {
	bus := New()
	key, _ := TopicKey(appRoot(), "ack")
	pub, _ := NewPublisher(bus, "ack", key)
	sub, _ := NewSubscriber(bus, "ack", key)
	if _, err := pub.Publish([]byte("one")); err != nil {
		t.Fatal(err)
	}
	pend, err := sub.Lease(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 {
		t.Fatalf("leased %d", len(pend))
	}
	if !sub.Ack(pend[0].Seq) {
		t.Fatal("ack failed")
	}
	bus.mu.Lock()
	nl := len(bus.leased)
	bus.mu.Unlock()
	if nl != 0 {
		t.Fatalf("lease maps retained after full ack: %d topics", nl)
	}
}

// TestSubscriberDepth: the per-subscriber monitoring hook reports the
// pending-queue length without consuming or leasing anything, tracks
// partial drains, leaves leased-but-unacked messages counted, and goes to
// zero when the subscriber closes.
func TestSubscriberDepth(t *testing.T) {
	bus := New()
	p, s := topicPair(t, bus, "t")
	if got := s.Depth(); got != 0 {
		t.Fatalf("fresh Depth = %d", got)
	}
	for i := 0; i < 7; i++ {
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Depth(); got != 7 {
		t.Fatalf("Depth = %d, want 7", got)
	}
	// Depth is pure observation: asking twice changes nothing.
	if got := s.Depth(); got != 7 {
		t.Fatalf("second Depth = %d, want 7", got)
	}
	if _, err := s.PollBatch(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Depth(); got != 4 {
		t.Fatalf("Depth after PollBatch(3) = %d, want 4", got)
	}
	// Leased messages remain queued (and counted) until acked.
	pend, err := s.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Depth(); got != 4 {
		t.Fatalf("Depth after Lease = %d, want 4", got)
	}
	if !s.Ack(pend[0].Seq) {
		t.Fatal("ack failed")
	}
	if got := s.Depth(); got != 3 {
		t.Fatalf("Depth after Ack = %d, want 3", got)
	}
	s.Close()
	if got := s.Depth(); got != 0 {
		t.Fatalf("Depth after Close = %d, want 0", got)
	}
}

// TestSubscriberDepthIndependentPerSubscriber: each subscriber's depth is
// its own backlog, not the topic aggregate.
func TestSubscriberDepthIndependentPerSubscriber(t *testing.T) {
	bus := New()
	p, fast := topicPair(t, bus, "t")
	key, _ := TopicKey(appRoot(), "t")
	slow, err := NewSubscriber(bus, "t", key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fast.Receive(); err != nil {
		t.Fatal(err)
	}
	if f, sl := fast.Depth(), slow.Depth(); f != 0 || sl != 4 {
		t.Fatalf("fast/slow Depth = %d/%d, want 0/4", f, sl)
	}
	if got := bus.Depth("t"); got != 4 {
		t.Fatalf("topic Depth = %d, want 4", got)
	}
}

// TestQueueLimitExactlyFull pins the bound's boundary semantics: a queue
// may hold exactly the limit; the publish that would exceed it — even by
// one message of a batch — is rejected whole, with nothing enqueued.
func TestQueueLimitExactlyFull(t *testing.T) {
	bus := New()
	bus.SetQueueLimit("t", 8)
	p, s := topicPair(t, bus, "t")

	// Fill to exactly the limit in one batch: allowed.
	batch := make([][]byte, 8)
	for i := range batch {
		batch[i] = []byte{byte(i)}
	}
	if _, err := p.PublishBatch(batch); err != nil {
		t.Fatalf("publish at exactly-full: %v", err)
	}
	if got := s.Depth(); got != 8 {
		t.Fatalf("Depth = %d, want 8", got)
	}
	// One more is back-pressure, and the queue is untouched.
	if _, err := p.Publish([]byte("x")); !errors.Is(err, ErrBackPres) {
		t.Fatalf("publish beyond limit: err = %v, want ErrBackPres", err)
	}
	if got := s.Depth(); got != 8 {
		t.Fatalf("Depth after rejected publish = %d, want 8", got)
	}
	// A batch straddling the boundary (7 queued + 2 new) is all-or-nothing.
	if _, err := s.PollBatch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PublishBatch([][]byte{{0xA}, {0xB}}); !errors.Is(err, ErrBackPres) {
		t.Fatalf("straddling batch: err = %v, want ErrBackPres", err)
	}
	if got := s.Depth(); got != 7 {
		t.Fatalf("Depth after rejected batch = %d, want 7", got)
	}
	// Exactly filling the remaining slot succeeds.
	if _, err := p.Publish([]byte("y")); err != nil {
		t.Fatalf("publish into last slot: %v", err)
	}
}

// TestQueueLimitPersistsAcrossSubscriberChurn: SetQueueLimit is topology
// configuration — the last unsubscriber prunes the topic's queue maps, but
// a re-created subscription is bounded identically. Restoring the default
// with limit <= 0 also works.
func TestQueueLimitPersistsAcrossSubscriberChurn(t *testing.T) {
	bus := New()
	bus.SetQueueLimit("t", 2)
	p, s := topicPair(t, bus, "t")
	if _, err := p.PublishBatch([][]byte{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Last unsubscriber pruned the queue map entirely.
	bus.mu.Lock()
	_, queueAlive := bus.queues["t"]
	bus.mu.Unlock()
	if queueAlive {
		t.Fatal("topic queue map survived last unsubscribe")
	}
	key, _ := TopicKey(appRoot(), "t")
	s2, err := NewSubscriber(bus, "t", key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PublishBatch([][]byte{{3}, {4}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte{5}); !errorsIsBackPres(err) {
		t.Fatalf("limit lost across churn: err = %v", err)
	}
	bus.SetQueueLimit("t", 0) // restore default
	if _, err := p.Publish([]byte{5}); err != nil {
		t.Fatalf("default limit not restored: %v", err)
	}
	s2.Close()
}

func errorsIsBackPres(err error) bool { return errors.Is(err, ErrBackPres) }

// TestUnsubscribePrunesQueueAndLimitIndependence: unsubscribing one of two
// subscribers prunes only that handle's queue (the per-tenant queue of the
// departing consumer), leaving the peer's backlog and the topic limit
// intact.
func TestUnsubscribePrunesOnlyOwnQueue(t *testing.T) {
	bus := New()
	p, a := topicPair(t, bus, "t")
	key, _ := TopicKey(appRoot(), "t")
	b, err := NewSubscriber(bus, "t", key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PublishBatch([][]byte{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if got := b.Depth(); got != 3 {
		t.Fatalf("peer Depth after unsubscribe = %d, want 3", got)
	}
	bus.mu.Lock()
	n := len(bus.queues["t"])
	bus.mu.Unlock()
	if n != 1 {
		t.Fatalf("queue handles after unsubscribe = %d, want 1", n)
	}
	// The departed handle's queue no longer counts toward back-pressure.
	bus.SetQueueLimit("t", 3)
	if _, err := p.Publish([]byte{4}); !errors.Is(err, ErrBackPres) {
		t.Fatalf("peer still bounded: err = %v, want ErrBackPres", err)
	}
	if _, err := b.PollBatch(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte{4}); err != nil {
		t.Fatalf("publish after drain: %v", err)
	}
	b.Close()
}
