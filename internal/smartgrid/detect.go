package smartgrid

import (
	"fmt"
	"math"
	"sort"
)

// TheftAlert names a suspected meter with its evidence.
type TheftAlert struct {
	Feeder string
	// GapKW is the average feeder-vs-meter-sum shortfall.
	GapKW float64
	// Suspects are the meters most consistent with the shortfall,
	// strongest first.
	Suspects []string
}

// TheftDetector implements use case 1: it compares the utility's feeder
// instrumentation against the sum of reported meter values per window —
// theft appears as a persistent feeder-level shortfall — and then ranks
// the feeder's meters by how far their reported consumption dropped below
// their own historical profile.
type TheftDetector struct {
	// WindowTicks is the aggregation window.
	WindowTicks int64
	// GapThreshold is the relative shortfall that triggers an alert.
	GapThreshold float64

	// profile is the long-run mean reported power per meter (EWMA).
	profile map[string]float64
	// window accumulators
	windowStart int64
	repSum      map[string]float64 // feeder -> reported sum
	trueSum     map[string]float64 // feeder -> instrumented sum
	meterSum    map[string]float64 // meter -> reported sum in window
	meterFd     map[string]string
	samples     int64
}

// NewTheftDetector returns a detector with a one-hour window at 30-second
// sampling. The 0.5% shortfall threshold sits above feeder instrumentation
// noise (zero in this model; sub-0.1% in practice after technical-loss
// correction) but below the signature of a single residential thief
// under-reporting most of their consumption on a 50-meter feeder.
func NewTheftDetector() *TheftDetector {
	return &TheftDetector{
		WindowTicks:  120,
		GapThreshold: 0.005,
		profile:      make(map[string]float64),
		repSum:       make(map[string]float64),
		trueSum:      make(map[string]float64),
		meterSum:     make(map[string]float64),
		meterFd:      make(map[string]string),
	}
}

// Observe feeds one tick of readings plus the feeder ground truth. It
// returns alerts at window boundaries (nil otherwise).
func (d *TheftDetector) Observe(tick int64, readings []Reading, feederTrueKW map[string]float64) []TheftAlert {
	for _, r := range readings {
		d.repSum[r.Feeder] += r.PowerKW
		d.meterSum[r.MeterID] += r.PowerKW
		d.meterFd[r.MeterID] = r.Feeder
		// EWMA profile of reported consumption.
		if p, ok := d.profile[r.MeterID]; ok {
			d.profile[r.MeterID] = 0.999*p + 0.001*r.PowerKW
		} else {
			d.profile[r.MeterID] = r.PowerKW
		}
	}
	for fd, kw := range feederTrueKW {
		d.trueSum[fd] += kw
	}
	d.samples++
	if d.samples < d.WindowTicks {
		return nil
	}
	alerts := d.closeWindow()
	d.samples = 0
	d.windowStart = tick + 1
	return alerts
}

// closeWindow evaluates the finished window and resets accumulators.
func (d *TheftDetector) closeWindow() []TheftAlert {
	var alerts []TheftAlert
	feeders := make([]string, 0, len(d.trueSum))
	for fd := range d.trueSum {
		feeders = append(feeders, fd)
	}
	sort.Strings(feeders)
	for _, fd := range feeders {
		truth := d.trueSum[fd]
		reported := d.repSum[fd]
		if truth <= 0 {
			continue
		}
		gap := (truth - reported) / truth
		if gap < d.GapThreshold {
			continue
		}
		alerts = append(alerts, TheftAlert{
			Feeder:   fd,
			GapKW:    (truth - reported) / float64(d.WindowTicks),
			Suspects: d.rankSuspects(fd),
		})
	}
	d.repSum = make(map[string]float64)
	d.trueSum = make(map[string]float64)
	d.meterSum = make(map[string]float64)
	return alerts
}

// rankSuspects orders a feeder's meters by profile shortfall.
func (d *TheftDetector) rankSuspects(feeder string) []string {
	type scored struct {
		meter string
		drop  float64
	}
	var all []scored
	for meter, fd := range d.meterFd {
		if fd != feeder {
			continue
		}
		expected := d.profile[meter] * float64(d.WindowTicks)
		if expected <= 0 {
			continue
		}
		drop := (expected - d.meterSum[meter]) / expected
		all = append(all, scored{meter: meter, drop: drop})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].drop != all[j].drop {
			return all[i].drop > all[j].drop
		}
		return all[i].meter < all[j].meter
	})
	n := 3
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, 0, n)
	for _, s := range all[:n] {
		out = append(out, s.meter)
	}
	return out
}

// QualityEvent is a detected power-quality violation.
type QualityEvent struct {
	Feeder string
	Tick   int64
	Kind   string // "sag" | "swell"
	// VoltV is the triggering per-feeder mean voltage.
	VoltV float64
}

func (e QualityEvent) String() string {
	return fmt.Sprintf("%s %s at tick %d (%.1f V)", e.Feeder, e.Kind, e.Tick, e.VoltV)
}

// QualityMonitor implements use case 2: per-feeder voltage monitoring with
// immediate (same-tick) detection of sags and swells, feeding the
// millisecond-scale orchestration reactions the paper describes.
type QualityMonitor struct {
	// SagBelow / SwellAbove are the trigger thresholds as fractions of
	// nominal (defaults 0.90 / 1.10 per EN 50160).
	SagBelow   float64
	SwellAbove float64
}

// NewQualityMonitor returns a monitor with EN 50160-style thresholds.
func NewQualityMonitor() *QualityMonitor {
	return &QualityMonitor{SagBelow: 0.90, SwellAbove: 1.10}
}

// Observe checks one tick of readings and returns events, one per feeder
// in violation.
func (m *QualityMonitor) Observe(tick int64, readings []Reading) []QualityEvent {
	sum := make(map[string]float64)
	n := make(map[string]int)
	for _, r := range readings {
		sum[r.Feeder] += r.VoltV
		n[r.Feeder]++
	}
	feeders := make([]string, 0, len(sum))
	for fd := range sum {
		feeders = append(feeders, fd)
	}
	sort.Strings(feeders)
	var events []QualityEvent
	for _, fd := range feeders {
		mean := sum[fd] / float64(n[fd])
		switch {
		case mean < m.SagBelow*NominalVoltage:
			events = append(events, QualityEvent{Feeder: fd, Tick: tick, Kind: "sag", VoltV: mean})
		case mean > m.SwellAbove*NominalVoltage:
			events = append(events, QualityEvent{Feeder: fd, Tick: tick, Kind: "swell", VoltV: mean})
		}
	}
	return events
}

// ConsumptionStats summarises a fleet window (the map/reduce aggregation
// workload of §III-B(3)).
type ConsumptionStats struct {
	TotalKWh float64
	PeakKW   float64
	PeakTick int64
}

// Aggregate folds readings (at tickSeconds cadence) into window stats.
func Aggregate(readings []Reading, tickSeconds float64) ConsumptionStats {
	perTick := make(map[int64]float64)
	for _, r := range readings {
		perTick[r.Tick] += r.PowerKW
	}
	var s ConsumptionStats
	s.PeakTick = -1
	for tick, kw := range perTick {
		s.TotalKWh += kw * tickSeconds / 3600
		if kw > s.PeakKW || (kw == s.PeakKW && (s.PeakTick == -1 || tick < s.PeakTick)) {
			s.PeakKW = kw
			s.PeakTick = tick
		}
	}
	return s
}

// InferOccupancy demonstrates the privacy risk the paper cites ([15]:
// appliance activity is visible in fine-grained traces): it flags the
// ticks where a meter's consumption jumps, i.e. when someone switched a
// load on. Its existence in the codebase is the argument for processing
// this data only inside enclaves.
func InferOccupancy(series []float64, jumpKW float64) []int {
	var events []int
	for i := 1; i < len(series); i++ {
		if math.Abs(series[i]-series[i-1]) >= jumpKW {
			events = append(events, i)
		}
	}
	return events
}
