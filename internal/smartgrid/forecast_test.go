package smartgrid

import (
	"errors"
	"math"
	"testing"
)

// fleetLoad sums the fleet's true consumption at a tick.
func fleetLoad(f *Fleet, tick int64) float64 {
	_, feederKW := f.Tick(tick)
	var sum float64
	for _, kw := range feederKW {
		sum += kw
	}
	return sum
}

func TestForecasterColdStart(t *testing.T) {
	fc := NewForecaster(100)
	if fc.Ready() {
		t.Fatal("ready without data")
	}
	if _, err := fc.Forecast(0); !errors.Is(err, ErrCold) {
		t.Fatalf("err = %v, want ErrCold", err)
	}
}

func TestForecasterLearnsDailyShape(t *testing.T) {
	const period = 288 // 5-minute ticks for speed
	fleet := NewFleet(FleetConfig{Seed: 3, Meters: 300, MetersPerFeeder: 50, TicksPerDay: period})
	fc := NewForecaster(period)

	// Train on two days.
	for tick := int64(0); tick < 2*period; tick++ {
		fc.Observe(tick, fleetLoad(fleet, tick))
	}
	if !fc.Ready() {
		t.Fatal("not ready after two days")
	}
	// Evaluate on the third day.
	var forecasts, actuals []float64
	for tick := 2 * int64(period); tick < 3*period; tick++ {
		pred, err := fc.Forecast(tick)
		if err != nil {
			t.Fatal(err)
		}
		forecasts = append(forecasts, pred)
		actuals = append(actuals, fleetLoad(fleet, tick))
	}
	mape := MAPE(forecasts, actuals)
	if math.IsNaN(mape) || mape > 0.15 {
		t.Fatalf("day-ahead MAPE = %.1f%%, want <15%%", 100*mape)
	}
}

func TestForecasterBeatsFlatBaseline(t *testing.T) {
	const period = 288
	fleet := NewFleet(FleetConfig{Seed: 5, Meters: 300, MetersPerFeeder: 50, TicksPerDay: period})
	fc := NewForecaster(period)
	var trainSum float64
	for tick := int64(0); tick < 2*period; tick++ {
		l := fleetLoad(fleet, tick)
		fc.Observe(tick, l)
		trainSum += l
	}
	flat := trainSum / float64(2*period)

	var fcErr, flatErr float64
	for tick := 2 * int64(period); tick < 3*period; tick++ {
		actual := fleetLoad(fleet, tick)
		pred, _ := fc.Forecast(tick)
		fcErr += math.Abs(pred - actual)
		flatErr += math.Abs(flat - actual)
	}
	if fcErr >= flatErr {
		t.Fatalf("seasonal forecaster (%.0f abs err) no better than flat mean (%.0f)", fcErr, flatErr)
	}
}

func TestForecastNonNegative(t *testing.T) {
	fc := NewForecaster(4)
	for tick := int64(0); tick < 8; tick++ {
		fc.Observe(tick, 0.1)
	}
	fc.level = -10 // force a pathological level
	v, err := fc.Forecast(0)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 {
		t.Fatalf("negative load forecast %f", v)
	}
}

func TestMAPEEdgeCases(t *testing.T) {
	if !math.IsNaN(MAPE(nil, nil)) {
		t.Fatal("empty MAPE not NaN")
	}
	if !math.IsNaN(MAPE([]float64{1}, []float64{1, 2})) {
		t.Fatal("length mismatch not NaN")
	}
	if !math.IsNaN(MAPE([]float64{1}, []float64{0})) {
		t.Fatal("all-zero actuals not NaN")
	}
	if got := MAPE([]float64{110}, []float64{100}); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("MAPE = %f, want 0.1", got)
	}
}
