// Package smartgrid implements the SecureCloud application use cases of
// paper §VI: synthetic smart-meter fleets producing sub-minute consumption
// telemetry, power-theft detection (use case 1), and power-quality / fault
// monitoring with tight detection latencies (use case 2). The generators
// are deterministic so experiments replay exactly; anomalies (theft,
// voltage sags) are injected with known ground truth, letting tests score
// detectors for misses and false alarms.
package smartgrid

import (
	"fmt"
	"math"
	"math/rand"

	"securecloud/internal/sim"
)

// Reading is one smart-meter sample.
type Reading struct {
	MeterID string  `json:"meter_id"`
	Feeder  string  `json:"feeder"`
	Tick    int64   `json:"tick"` // sample index (sub-minute cadence)
	PowerKW float64 `json:"power_kw"`
	VoltV   float64 `json:"volt_v"`
}

// NominalVoltage is the reference distribution voltage.
const NominalVoltage = 230.0

// FleetConfig describes a simulated metering fleet.
type FleetConfig struct {
	Seed int64
	// Meters in the fleet, grouped MetersPerFeeder to a feeder.
	Meters          int
	MetersPerFeeder int
	// TicksPerDay is the sampling cadence (paper: sub-minute; 2880 =
	// 30-second samples).
	TicksPerDay int64
	// BaseLoadKW scales household consumption.
	BaseLoadKW float64
}

// DefaultFleet returns a 1000-meter fleet sampling every 30 seconds.
func DefaultFleet(seed int64) FleetConfig {
	return FleetConfig{
		Seed:            seed,
		Meters:          1000,
		MetersPerFeeder: 50,
		TicksPerDay:     2880,
		BaseLoadKW:      0.8,
	}
}

// theft describes one meter under-reporting from a given tick.
type theft struct {
	meter  int
	from   int64
	factor float64 // reported = true * factor
}

// sag describes one feeder voltage sag window.
type sag struct {
	feeder   int
	from, to int64
	depth    float64 // voltage multiplier during the sag
}

// Fleet generates readings.
type Fleet struct {
	cfg    FleetConfig
	rng    *rand.Rand
	phase  []float64 // per-meter daily phase offset
	scale  []float64 // per-meter consumption scale
	thefts map[int]theft
	sags   []sag
}

// NewFleet builds a fleet.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Meters <= 0 {
		cfg.Meters = 1000
	}
	if cfg.MetersPerFeeder <= 0 {
		cfg.MetersPerFeeder = 50
	}
	if cfg.TicksPerDay <= 0 {
		cfg.TicksPerDay = 2880
	}
	if cfg.BaseLoadKW <= 0 {
		cfg.BaseLoadKW = 0.8
	}
	rng := sim.NewRand(cfg.Seed)
	f := &Fleet{cfg: cfg, rng: rng, thefts: make(map[int]theft)}
	for i := 0; i < cfg.Meters; i++ {
		f.phase = append(f.phase, rng.Float64()*0.2)
		f.scale = append(f.scale, 0.5+rng.Float64())
	}
	return f
}

// Config returns the fleet configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// FeederOf returns the feeder name of a meter index.
func (f *Fleet) FeederOf(meter int) string {
	return fmt.Sprintf("feeder-%03d", meter/f.cfg.MetersPerFeeder)
}

// MeterName returns the canonical meter identifier.
func MeterName(meter int) string { return fmt.Sprintf("meter-%05d", meter) }

// InjectTheft makes a meter under-report by factor from the given tick.
// Ground truth for detector scoring.
func (f *Fleet) InjectTheft(meter int, fromTick int64, factor float64) {
	f.thefts[meter] = theft{meter: meter, from: fromTick, factor: factor}
}

// InjectSag makes a feeder sag to depth×nominal during [from, to).
func (f *Fleet) InjectSag(feeder int, from, to int64, depth float64) {
	f.sags = append(f.sags, sag{feeder: feeder, from: from, to: to, depth: depth})
}

// Thieves returns the ground-truth theft meter IDs.
func (f *Fleet) Thieves() []string {
	var out []string
	for m := range f.thefts {
		out = append(out, MeterName(m))
	}
	return out
}

// dailyShape is the canonical residential load curve: low overnight, a
// morning ramp, and an evening peak.
func dailyShape(dayFrac float64) float64 {
	morning := 0.5 * math.Exp(-squared((dayFrac-0.33)/0.07))
	evening := 1.0 * math.Exp(-squared((dayFrac-0.80)/0.09))
	return 0.25 + morning + evening
}

func squared(x float64) float64 { return x * x }

// truePower returns the actual consumption of a meter at a tick.
func (f *Fleet) truePower(meter int, tick int64) float64 {
	dayFrac := math.Mod(float64(tick)/float64(f.cfg.TicksPerDay)+f.phase[meter], 1)
	noise := 1 + 0.15*f.rng.NormFloat64()
	if noise < 0.2 {
		noise = 0.2
	}
	p := f.cfg.BaseLoadKW * f.scale[meter] * dailyShape(dayFrac) * noise
	if p < 0.01 {
		p = 0.01
	}
	return p
}

// voltage returns the voltage seen by a meter at a tick, including sags.
func (f *Fleet) voltage(meter int, tick int64) float64 {
	v := NominalVoltage * (1 + 0.01*f.rng.NormFloat64())
	feeder := meter / f.cfg.MetersPerFeeder
	for _, s := range f.sags {
		if s.feeder == feeder && tick >= s.from && tick < s.to {
			v *= s.depth
		}
	}
	return v
}

// Tick emits the fleet's meter readings and the feeder-level ground-truth
// totals for one tick. Feeder totals model the utility's own feeder
// instrumentation, which theft cannot falsify.
func (f *Fleet) Tick(tick int64) (readings []Reading, feederTrueKW map[string]float64) {
	feederTrueKW = make(map[string]float64)
	for m := 0; m < f.cfg.Meters; m++ {
		truth := f.truePower(m, tick)
		reported := truth
		if th, ok := f.thefts[m]; ok && tick >= th.from {
			reported = truth * th.factor
		}
		fd := f.FeederOf(m)
		feederTrueKW[fd] += truth
		readings = append(readings, Reading{
			MeterID: MeterName(m),
			Feeder:  fd,
			Tick:    tick,
			PowerKW: reported,
			VoltV:   f.voltage(m, tick),
		})
	}
	return readings, feederTrueKW
}
