package smartgrid

import (
	"errors"
	"math"
)

// Forecaster predicts short-term aggregate load with an additive
// Holt-Winters-style model: a smoothed level plus a seasonal index per
// tick-of-day. Utilities run exactly this class of model over the metering
// data the SecureCloud platform protects; it is the third big data
// application of the smart-grid use case (load forecasting feeds both
// purchasing and the orchestration layer's capacity planning).
type Forecaster struct {
	// Alpha smooths the level; Gamma smooths the seasonal indexes.
	Alpha, Gamma float64

	period   int64
	level    float64
	seasonal []float64
	seeded   []bool
	n        int64
}

// ErrCold is returned when the forecaster has not seen a full season yet.
var ErrCold = errors.New("smartgrid: forecaster has not observed a full day")

// NewForecaster builds a forecaster for the given season length (ticks
// per day).
func NewForecaster(period int64) *Forecaster {
	if period <= 0 {
		period = 2880
	}
	return &Forecaster{
		Alpha:    0.2,
		Gamma:    0.3,
		period:   period,
		seasonal: make([]float64, period),
		seeded:   make([]bool, period),
	}
}

// Observe feeds the aggregate load of one tick.
func (f *Forecaster) Observe(tick int64, totalKW float64) {
	s := tick % f.period
	if f.n == 0 {
		f.level = totalKW
	}
	if !f.seeded[s] {
		f.seasonal[s] = totalKW - f.level
		f.seeded[s] = true
	} else {
		deseason := totalKW - f.seasonal[s]
		f.level = (1-f.Alpha)*f.level + f.Alpha*deseason
		f.seasonal[s] = (1-f.Gamma)*f.seasonal[s] + f.Gamma*(totalKW-f.level)
	}
	f.n++
}

// Ready reports whether a full season has been observed.
func (f *Forecaster) Ready() bool { return f.n >= f.period }

// Forecast predicts the load at a future tick.
func (f *Forecaster) Forecast(tick int64) (float64, error) {
	if !f.Ready() {
		return 0, ErrCold
	}
	v := f.level + f.seasonal[tick%f.period]
	if v < 0 {
		v = 0
	}
	return v, nil
}

// MAPE computes the mean absolute percentage error of the forecaster over
// a horizon of (tick, actual) samples — the standard forecast-quality
// score.
func MAPE(forecasts, actuals []float64) float64 {
	if len(forecasts) != len(actuals) || len(forecasts) == 0 {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i := range forecasts {
		if actuals[i] == 0 {
			continue
		}
		sum += math.Abs(forecasts[i]-actuals[i]) / actuals[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
