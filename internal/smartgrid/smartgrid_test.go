package smartgrid

import (
	"math"
	"testing"
)

func smallFleet(seed int64) *Fleet {
	return NewFleet(FleetConfig{
		Seed:            seed,
		Meters:          200,
		MetersPerFeeder: 50,
		TicksPerDay:     2880,
		BaseLoadKW:      0.8,
	})
}

func TestFleetDeterministic(t *testing.T) {
	a, b := smallFleet(1), smallFleet(1)
	ra, _ := a.Tick(100)
	rb, _ := b.Tick(100)
	if len(ra) != len(rb) {
		t.Fatal("same seed, different reading counts")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("same seed diverged at reading %d", i)
		}
	}
}

func TestDailyShapePeaks(t *testing.T) {
	night := dailyShape(0.1)   // ~2:24
	evening := dailyShape(0.8) // ~19:12
	if evening <= 2*night {
		t.Fatalf("evening peak (%.2f) not clearly above night load (%.2f)", evening, night)
	}
}

func TestReadingsPlausible(t *testing.T) {
	f := smallFleet(2)
	readings, feederKW := f.Tick(1200)
	if len(readings) != 200 {
		t.Fatalf("%d readings", len(readings))
	}
	for _, r := range readings {
		if r.PowerKW <= 0 || r.PowerKW > 50 {
			t.Fatalf("implausible power %f", r.PowerKW)
		}
		if r.VoltV < 200 || r.VoltV > 260 {
			t.Fatalf("implausible voltage %f", r.VoltV)
		}
	}
	if len(feederKW) != 4 {
		t.Fatalf("%d feeders, want 4", len(feederKW))
	}
}

func TestFeederTruthMatchesHonestSum(t *testing.T) {
	f := smallFleet(3)
	readings, feederKW := f.Tick(500)
	sums := make(map[string]float64)
	for _, r := range readings {
		sums[r.Feeder] += r.PowerKW
	}
	for fd, truth := range feederKW {
		if math.Abs(truth-sums[fd]) > 1e-9 {
			t.Fatalf("honest fleet: feeder %s truth %.3f != reported %.3f", fd, truth, sums[fd])
		}
	}
}

func TestTheftVisibleInGap(t *testing.T) {
	f := smallFleet(4)
	f.InjectTheft(10, 0, 0.2)
	readings, feederKW := f.Tick(800)
	sums := make(map[string]float64)
	for _, r := range readings {
		sums[r.Feeder] += r.PowerKW
	}
	fd := f.FeederOf(10)
	if feederKW[fd] <= sums[fd] {
		t.Fatal("theft not visible as feeder shortfall")
	}
}

func TestTheftDetectorFindsInjectedThief(t *testing.T) {
	f := smallFleet(5)
	const thief = 23
	f.InjectTheft(thief, 0, 0.2)
	d := NewTheftDetector()

	// Warm profiles on ~2 windows, then detect.
	var alerts []TheftAlert
	for tick := int64(0); tick < 3*d.WindowTicks; tick++ {
		readings, truth := f.Tick(tick)
		if a := d.Observe(tick, readings, truth); a != nil {
			alerts = a
		}
	}
	if len(alerts) != 1 {
		t.Fatalf("got %d alerts, want 1 (only one feeder has theft)", len(alerts))
	}
	if alerts[0].Feeder != f.FeederOf(thief) {
		t.Fatalf("alert on %s, thief on %s", alerts[0].Feeder, f.FeederOf(thief))
	}
}

func TestTheftDetectorNoFalseAlarms(t *testing.T) {
	f := smallFleet(6) // honest fleet
	d := NewTheftDetector()
	for tick := int64(0); tick < 4*d.WindowTicks; tick++ {
		readings, truth := f.Tick(tick)
		if alerts := d.Observe(tick, readings, truth); len(alerts) != 0 {
			t.Fatalf("false alarm on honest fleet: %+v", alerts)
		}
	}
}

func TestTheftSuspectRanking(t *testing.T) {
	f := smallFleet(7)
	const thief = 5
	d := NewTheftDetector()
	// Build honest profiles first, then start the theft.
	var tick int64
	for ; tick < 2*d.WindowTicks; tick++ {
		readings, truth := f.Tick(tick)
		d.Observe(tick, readings, truth)
	}
	f.InjectTheft(thief, tick, 0.2)
	var alerts []TheftAlert
	for end := tick + 2*d.WindowTicks; tick < end; tick++ {
		readings, truth := f.Tick(tick)
		if a := d.Observe(tick, readings, truth); a != nil {
			alerts = a
		}
	}
	if len(alerts) == 0 {
		t.Fatal("no alert after theft started")
	}
	found := false
	for _, s := range alerts[0].Suspects {
		if s == MeterName(thief) {
			found = true
		}
	}
	if !found {
		t.Fatalf("thief %s not among suspects %v", MeterName(thief), alerts[0].Suspects)
	}
}

func TestQualityMonitorDetectsSagSameTick(t *testing.T) {
	f := smallFleet(8)
	f.InjectSag(1, 100, 110, 0.8)
	m := NewQualityMonitor()
	readings, _ := f.Tick(99)
	if events := m.Observe(99, readings); len(events) != 0 {
		t.Fatalf("sag detected before injection: %v", events)
	}
	readings, _ = f.Tick(100)
	events := m.Observe(100, readings)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	if events[0].Kind != "sag" || events[0].Feeder != "feeder-001" {
		t.Fatalf("event = %+v", events[0])
	}
	// Detection latency is zero ticks: the paper's "milliseconds"
	// requirement maps to same-sample detection here.
	if events[0].Tick != 100 {
		t.Fatal("detection lagged the sag")
	}
}

func TestQualityMonitorSwell(t *testing.T) {
	f := smallFleet(9)
	f.InjectSag(2, 50, 60, 1.15) // depth > 1 is a swell
	m := NewQualityMonitor()
	readings, _ := f.Tick(55)
	events := m.Observe(55, readings)
	if len(events) != 1 || events[0].Kind != "swell" {
		t.Fatalf("events = %v", events)
	}
}

func TestAggregate(t *testing.T) {
	readings := []Reading{
		{MeterID: "a", Tick: 0, PowerKW: 1},
		{MeterID: "b", Tick: 0, PowerKW: 2},
		{MeterID: "a", Tick: 1, PowerKW: 5},
	}
	s := Aggregate(readings, 30)
	if s.PeakKW != 5 || s.PeakTick != 1 {
		t.Fatalf("peak = %f at %d", s.PeakKW, s.PeakTick)
	}
	wantKWh := (3.0 + 5.0) * 30 / 3600
	if math.Abs(s.TotalKWh-wantKWh) > 1e-9 {
		t.Fatalf("TotalKWh = %f, want %f", s.TotalKWh, wantKWh)
	}
}

func TestInferOccupancyFindsJumps(t *testing.T) {
	series := []float64{0.2, 0.2, 2.5, 2.5, 0.3}
	events := InferOccupancy(series, 1.0)
	if len(events) != 2 || events[0] != 2 || events[1] != 4 {
		t.Fatalf("events = %v", events)
	}
	if got := InferOccupancy(series, 10); len(got) != 0 {
		t.Fatal("jump threshold ignored")
	}
}

func TestFeederNaming(t *testing.T) {
	f := smallFleet(10)
	if f.FeederOf(0) != "feeder-000" || f.FeederOf(50) != "feeder-001" {
		t.Fatal("feeder grouping wrong")
	}
	if MeterName(7) != "meter-00007" {
		t.Fatalf("MeterName = %q", MeterName(7))
	}
}
