package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/microsvc"
	"securecloud/internal/smartgrid"
)

// tickMsg is the bus payload of one telemetry tick.
type tickMsg struct {
	Tick     int64               `json:"tick"`
	Readings []smartgrid.Reading `json:"readings"`
	FeederKW map[string]float64  `json:"feeder_kw"`
}

// TestSmartGridPipelineFullStack is the §VI integration test: meter fleet
// → encrypted bus → enclave-hosted analytics micro-service → encrypted
// alert topic, with injected theft and a voltage sag that must both be
// detected, and no plaintext on the bus.
func TestSmartGridPipelineFullStack(t *testing.T) {
	svc := attest.NewService()
	cloud, err := NewCloud(1, svc)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner(svc)
	if err != nil {
		t.Fatal(err)
	}

	// Analytics enclave on the node.
	var signer cryptbox.Digest
	enc, err := cloud.Node(0).Platform.ECreate(64<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("analytics")); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}

	detector := smartgrid.NewTheftDetector()
	quality := smartgrid.NewQualityMonitor()
	reqKey, err := owner.TopicKey("req")
	if err != nil {
		t.Fatal(err)
	}
	analytics, err := microsvc.New("analytics", enc, reqKey, func(req []byte) ([]byte, error) {
		var p tickMsg
		if err := json.Unmarshal(req, &p); err != nil {
			return nil, err
		}
		var out []string
		for _, a := range detector.Observe(p.Tick, p.Readings, p.FeederKW) {
			out = append(out, "THEFT "+a.Feeder+" "+fmt.Sprint(a.Suspects))
		}
		for _, e := range quality.Observe(p.Tick, p.Readings) {
			out = append(out, "QUALITY "+e.String())
		}
		if out == nil {
			return nil, nil
		}
		return json.Marshal(out)
	})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := microsvc.NewBusWorker(analytics, cloud.Bus, owner.AppRoot, "readings", "alerts")
	if err != nil {
		t.Fatal(err)
	}

	rk, _ := owner.TopicKey("readings")
	pub, err := eventbus.NewPublisher(cloud.Bus, "readings", rk)
	if err != nil {
		t.Fatal(err)
	}
	ak, _ := owner.TopicKey("alerts")
	alertSub, err := eventbus.NewSubscriber(cloud.Bus, "alerts", ak)
	if err != nil {
		t.Fatal(err)
	}
	fleet := smartgrid.NewFleet(smartgrid.FleetConfig{
		Seed: 11, Meters: 150, MetersPerFeeder: 50, TicksPerDay: 2880,
	})
	const thief = 60 // feeder-001
	fleet.InjectTheft(thief, 120, 0.2)
	fleet.InjectSag(2, 150, 155, 0.8)

	const horizon = 240
	for tick := int64(0); tick < horizon; tick++ {
		readings, feederKW := fleet.Tick(tick)
		body, err := json.Marshal(tickMsg{Tick: tick, Readings: readings, FeederKW: feederKW})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pub.Publish(body); err != nil {
			t.Fatal(err)
		}
		if _, err := worker.Step(); err != nil {
			t.Fatal(err)
		}
	}

	msgs, err := alertSub.Receive()
	if err != nil {
		t.Fatal(err)
	}
	var sawTheft, sawQuality bool
	for _, m := range msgs {
		var batch []string
		if err := json.Unmarshal(m, &batch); err != nil {
			t.Fatal(err)
		}
		for _, a := range batch {
			if bytes.HasPrefix([]byte(a), []byte("THEFT feeder-001")) {
				sawTheft = true
			}
			if bytes.HasPrefix([]byte(a), []byte("QUALITY feeder-002 sag")) {
				sawQuality = true
			}
		}
	}
	if !sawTheft {
		t.Fatal("theft on feeder-001 not detected through the full stack")
	}
	if !sawQuality {
		t.Fatal("voltage sag on feeder-002 not detected through the full stack")
	}
	// The analytics really ran inside the enclave.
	if enc.Memory().Breakdown()[enclave.CauseTransition] == 0 {
		t.Fatal("no enclave entries recorded for the pipeline")
	}
	if analytics.Served() != 0 {
		// BusWorker bypasses Invoke's counter; Served counts direct calls.
		t.Log("note: Served counts direct invocations only")
	}
	if cloud.Bus.Depth("readings") != 0 {
		t.Fatal("readings left in the bus")
	}
}
