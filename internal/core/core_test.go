package core

import (
	"bytes"
	"errors"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/fsshield"
	"securecloud/internal/image"
)

func setup(t *testing.T, nodes int) (*Cloud, *Owner) {
	t.Helper()
	svc := attest.NewService()
	cloud, err := NewCloud(nodes, svc)
	if err != nil {
		t.Fatal(err)
	}
	owner, err := NewOwner(svc)
	if err != nil {
		t.Fatal(err)
	}
	return cloud, owner
}

func theftSpec() ServiceSpec {
	return ServiceSpec{
		Name: "smartgrid/theft",
		Tag:  "1.0",
		Code: []byte("THEFT-DETECTOR-v1"),
		Files: map[string][]byte{
			"/etc/model": []byte("sensitivity=0.97"),
		},
		Protect: map[string]fsshield.Mode{"/etc/model": fsshield.ModeEncrypted},
		Args:    []string{"serve"},
		Env:     map[string]string{"REGION": "eu"},
	}
}

func TestDeployAndRunEndToEnd(t *testing.T) {
	cloud, owner := setup(t, 3)
	d, err := owner.Deploy(cloud, theftSpec())
	if err != nil {
		t.Fatal(err)
	}
	c, err := cloud.Run(1, d, owner)
	if err != nil {
		t.Fatal(err)
	}
	model, err := c.Runtime.FS().ReadFile("/etc/model")
	if err != nil {
		t.Fatal(err)
	}
	if string(model) != "sensitivity=0.97" {
		t.Fatalf("model = %q", model)
	}
	if c.Runtime.SCF().Env["REGION"] != "eu" {
		t.Fatal("SCF env lost")
	}
	if err := c.Runtime.Stdout([]byte("alert feeder-1")); err != nil {
		t.Fatal(err)
	}
	lines, err := cloud.ReadStdout(1, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || string(lines[0]) != "alert feeder-1" {
		t.Fatalf("stdout = %q", lines)
	}
}

func TestRunOnEveryNode(t *testing.T) {
	cloud, owner := setup(t, 3)
	d, err := owner.Deploy(cloud, theftSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cloud.Nodes {
		if _, err := cloud.Run(i, d, owner); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

func TestDeployRejectsEmptyCode(t *testing.T) {
	cloud, owner := setup(t, 1)
	spec := theftSpec()
	spec.Code = nil
	if _, err := owner.Deploy(cloud, spec); !errors.Is(err, ErrNoCode) {
		t.Fatalf("err = %v, want ErrNoCode", err)
	}
}

func TestSecretsNeverReachRegistry(t *testing.T) {
	cloud, owner := setup(t, 1)
	d, err := owner.Deploy(cloud, theftSpec())
	if err != nil {
		t.Fatal(err)
	}
	img, err := cloud.Registry.Pull("smartgrid/theft", "1.0")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range img.Layers {
		for path, data := range l.Files {
			if bytes.Contains(data, []byte("sensitivity=0.97")) {
				t.Fatalf("protected config visible in registry at %s", path)
			}
		}
	}
	_ = d
}

func TestForeignOwnerCannotRunImage(t *testing.T) {
	// A second owner (different CAS) cannot obtain secrets for the first
	// owner's image.
	svc := attest.NewService()
	cloud, err := NewCloud(1, svc)
	if err != nil {
		t.Fatal(err)
	}
	owner1, _ := NewOwner(svc)
	owner2, _ := NewOwner(svc)
	d, err := owner1.Deploy(cloud, theftSpec())
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	if _, err := cloud.Node(0).Engine.Run("smartgrid/theft", "1.0", owner2.CAS); err == nil {
		t.Fatal("container booted against a CAS that never saw the SCF")
	}
}

func TestTamperedRegistryBlocksBoot(t *testing.T) {
	cloud, owner := setup(t, 1)
	d, err := owner.Deploy(cloud, theftSpec())
	if err != nil {
		t.Fatal(err)
	}
	cloud.Registry.TamperLayer(d.Image.Manifest.LayerDigests[0], func(l *image.Layer) {
		l.Files[container.EntrypointPath] = []byte("EVIL")
	})
	if _, err := cloud.Run(0, d, owner); err == nil {
		t.Fatal("tampered image executed")
	}
}

func TestTopicKeyDerivation(t *testing.T) {
	_, owner := setup(t, 1)
	a, err := owner.TopicKey("alerts")
	if err != nil {
		t.Fatal(err)
	}
	b, err := owner.TopicKey("readings")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("topic keys collide")
	}
}

func TestUsageAccountingAcrossStack(t *testing.T) {
	cloud, owner := setup(t, 1)
	d, err := owner.Deploy(cloud, theftSpec())
	if err != nil {
		t.Fatal(err)
	}
	c, err := cloud.Run(0, d, owner)
	if err != nil {
		t.Fatal(err)
	}
	u := c.Usage()
	if u.CPUCycles == 0 || u.Syscalls == 0 {
		t.Fatalf("usage empty: %+v", u)
	}
}
