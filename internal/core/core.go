// Package core assembles the SecureCloud platform (the paper's primary
// contribution): the untrusted cloud side — SGX nodes with container
// engines, the image registry, the event bus — and the trusted owner side
// — signing keys, the configuration and attestation service (CAS), and the
// SCONE client. It is the top-level API a SecureCloud application uses:
// build a secure image, deploy it, and run it on any node of an untrusted
// cloud with end-to-end confidentiality and integrity.
package core

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"

	"securecloud/internal/attest"
	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/eventbus"
	"securecloud/internal/fsshield"
	"securecloud/internal/image"
	"securecloud/internal/registry"
	"securecloud/internal/sconert"
	"securecloud/internal/shield"
)

// Node is one SGX-capable machine of the untrusted cloud.
type Node struct {
	ID       string
	Platform *enclave.Platform
	Host     *shield.Host
	Quoter   *attest.Quoter
	Engine   *container.Engine
}

// Cloud is the untrusted provider side: nodes, the registry and the bus.
// Everything here is assumed adversarial; the security of applications
// rests on the enclaves and the cryptography, not on this code behaving.
type Cloud struct {
	Nodes    []*Node
	Registry *registry.Registry
	Bus      *eventbus.Bus
}

// NewCloud provisions n SGX nodes against the given attestation service
// (each node's quoting enclave is registered with it at "manufacture").
func NewCloud(n int, svc *attest.Service) (*Cloud, error) {
	if n <= 0 {
		n = 1
	}
	c := &Cloud{Registry: registry.New(), Bus: eventbus.New()}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%02d", i)
		p := enclave.NewPlatform(enclave.Config{})
		q, err := svc.Provision(p, id)
		if err != nil {
			return nil, err
		}
		host := shield.NewHost()
		c.Nodes = append(c.Nodes, &Node{
			ID:       id,
			Platform: p,
			Host:     host,
			Quoter:   q,
			Engine:   container.NewEngine(p, host, c.Registry, q),
		})
	}
	return c, nil
}

// Node returns a node by index (wrapping), for simple round-robin
// placement in examples and tests.
func (c *Cloud) Node(i int) *Node { return c.Nodes[i%len(c.Nodes)] }

// Owner is the trusted environment of an application owner: the only
// place where signing keys, SCFs and application root keys exist in
// plaintext.
type Owner struct {
	SignKey ed25519.PrivateKey
	CAS     *sconert.CAS
	Client  *container.SCONEClient
	// AppRoot derives topic keys and service request keys.
	AppRoot cryptbox.Key
}

// NewOwner creates an owner trusting the given attestation service.
func NewOwner(svc *attest.Service) (*Owner, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	root, err := cryptbox.NewRandomKey()
	if err != nil {
		return nil, err
	}
	cas := sconert.NewCAS(svc)
	return &Owner{
		SignKey: priv,
		CAS:     cas,
		Client:  container.NewSCONEClient(priv, cas),
		AppRoot: root,
	}, nil
}

// ServiceSpec describes one micro-service to deploy.
type ServiceSpec struct {
	Name string
	Tag  string
	// Code is the micro-service executable (the measured enclave
	// content).
	Code []byte
	// Files are additional image files; Protect lists which of them get
	// which protection mode.
	Files   map[string][]byte
	Protect map[string]fsshield.Mode
	// Args / Env go into the SCF, never into the image.
	Args []string
	Env  map[string]string
	// EnclaveSize requests the ELRANGE (default 64 MiB).
	EnclaveSize uint64
}

// Deployment is the owner-side record of a deployed service.
type Deployment struct {
	Image *image.Image
	SCF   sconert.SCF
}

// ErrNoCode rejects service specs without an executable.
var ErrNoCode = errors.New("core: service spec has no code")

// Deploy builds the secure image for spec, registers its SCF with the
// owner's CAS, and pushes the image to the cloud registry. The returned
// Deployment holds the owner's copy of the SCF for secure communication.
func (o *Owner) Deploy(cloud *Cloud, spec ServiceSpec) (*Deployment, error) {
	if len(spec.Code) == 0 {
		return nil, ErrNoCode
	}
	files := map[string][]byte{container.EntrypointPath: spec.Code}
	for p, b := range spec.Files {
		files[p] = b
	}
	b := image.NewBuilder(spec.Name, orDefault(spec.Tag, "latest")).
		AddLayer(files).
		SetEntrypoint(container.EntrypointPath)
	if spec.EnclaveSize > 0 {
		b.SetEnclaveSize(spec.EnclaveSize)
	}
	for k, v := range spec.Env {
		b.SetEnv(k, v)
	}
	plain, err := b.Build(o.SignKey)
	if err != nil {
		return nil, err
	}
	secured, secrets, err := o.Client.BuildSecure(plain, spec.Protect)
	if err != nil {
		return nil, err
	}
	scf, err := o.Client.Deploy(secured, secrets, spec.Args, spec.Env)
	if err != nil {
		return nil, err
	}
	if err := cloud.Registry.Push(secured); err != nil {
		return nil, err
	}
	return &Deployment{Image: secured, SCF: scf}, nil
}

// Run starts a deployed service on a cloud node.
func (c *Cloud) Run(node int, d *Deployment, o *Owner) (*container.Container, error) {
	n := c.Node(node)
	return n.Engine.Run(d.Image.Manifest.Name, d.Image.Manifest.Tag, o.CAS)
}

// ReadStdout decrypts a container's stdout from the node that hosts it,
// using the owner's SCF copy.
func (c *Cloud) ReadStdout(node int, d *Deployment) ([][]byte, error) {
	return container.ReadStdout(c.Node(node).Host, d.SCF)
}

// TopicKey derives an application topic key for bus endpoints.
func (o *Owner) TopicKey(topic string) (cryptbox.Key, error) {
	return eventbus.TopicKey(o.AppRoot, topic)
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
