package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/registry"
	"securecloud/internal/shield"
	"securecloud/internal/transfer"
)

// keysForShard probes the store's hash until it has n distinct keys that
// land on the given shard — the way tests confine mutations to one shard.
func keysForShard(t testing.TB, ds *DurableStore, shard, n int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("k-%04d", i)
		if ds.shardOf(k) == shard {
			keys = append(keys, k)
		}
		if i > 1<<16 {
			t.Fatalf("no %d keys found for shard %d", n, shard)
		}
	}
	return keys
}

// mutateShard overwrites n of the given shard's keys with fresh values of
// a fixed length (fixed so chunk boundaries don't shift — the minimal
// delta), applying the same writes to the reference map.
func mutateShard(t testing.TB, ds *DurableStore, ref map[string][]byte, rng *rand.Rand, shard, n int) {
	t.Helper()
	keys := keysForShard(t, ds, shard, n)
	pairs := make([]Pair, n)
	for i, k := range keys {
		v := make([]byte, 32)
		rng.Read(v)
		pairs[i] = Pair{Key: k, Value: v}
	}
	if err := ds.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	applyToMap(ref, pairs)
}

// coldNode clones cfg onto a replacement node: same registry, fresh engine
// with an empty blob cache.
func coldNode(cfg DurableConfig) DurableConfig {
	cold := cfg
	eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), cfg.Engine.Registry, nil)
	eng.Cache = container.NewBlobCache()
	eng.PullWorkers = cfg.Workers
	cold.Engine = eng
	return cold
}

// loadFixture fills a fixture store and reference map with a deterministic
// base dataset.
func loadFixture(t testing.TB, ds *DurableStore, seed int64) map[string][]byte {
	t.Helper()
	ref := map[string][]byte{}
	for _, b := range genBatches(seed, 6, 14) {
		if err := ds.PutBatch(b); err != nil {
			t.Fatal(err)
		}
		applyToMap(ref, b)
	}
	return ref
}

// TestDurableDeltaSnapshotReuse pins the incremental-snapshot contract:
// after a mutation confined to one shard, the next snapshot packs exactly
// that shard, publishes strictly fewer chunks and charges strictly fewer
// pack cycles than the full snapshot did, and the other shards chain reuse
// records that cold recovery walks back to the packed parents.
func TestDurableDeltaSnapshotReuse(t *testing.T) {
	const shards = 4
	ds, cfg := newDurableFixture(t, shards, 2)
	ref := loadFixture(t, ds, 7)

	full, err := ds.Snapshot() // first snapshot: nothing to reuse yet
	if err != nil {
		t.Fatal(err)
	}
	if full.ShardsPacked != shards || full.ShardsReused != 0 {
		t.Fatalf("first snapshot: %+v", full)
	}
	if full.ChunksPublished == 0 || full.PackCycles == 0 {
		t.Fatalf("first snapshot published nothing: %+v", full)
	}

	mutateShard(t, ds, ref, rand.New(rand.NewSource(3)), 0, 2)
	delta, err := ds.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if delta.ShardsPacked != 1 || delta.ShardsReused != shards-1 {
		t.Fatalf("delta snapshot: %+v", delta)
	}
	if delta.ChunksPublished >= full.ChunksPublished {
		t.Fatalf("delta published %d chunks, full published %d", delta.ChunksPublished, full.ChunksPublished)
	}
	if delta.PackCycles >= full.PackCycles {
		t.Fatalf("delta charged %d pack cycles, full charged %d", delta.PackCycles, full.PackCycles)
	}

	rec, rs, err := RecoverDurableStore(coldNode(cfg), ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want := mapDigest(t, ref); got != want {
		t.Fatal("delta-chain recovery differs from reference")
	}
	// The packed head is 1 link; each reused shard chains head → parent.
	if wantLinks := 1 + (shards-1)*2; rs.ChainLinks != wantLinks {
		t.Fatalf("chain links %d, want %d", rs.ChainLinks, wantLinks)
	}
	// A clean recovered store snapshots again without re-packing anything
	// recovery didn't touch (no tail records → everything reuses).
	st, err := rec.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 3 || st.ShardsPacked != 0 || st.ShardsReused != shards {
		t.Fatalf("post-recovery snapshot: %+v", st)
	}
}

// TestDurableDeltaWarmRecoveryFetches pins the warm-delta promise: after a
// small mutation and a delta snapshot, recovering on a node that already
// pulled the previous snapshot fetches only the changed chunks — strictly
// fewer than the cold full recovery, with everything else a cache hit.
func TestDurableDeltaWarmRecoveryFetches(t *testing.T) {
	ds, cfg := newDurableFixture(t, 4, 2)
	ref := loadFixture(t, ds, 19)
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}

	node := coldNode(cfg)
	rec, rsCold, err := RecoverDurableStore(node, ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	if rsCold.ChunksFetched == 0 || rsCold.CacheHits != 0 {
		t.Fatalf("cold recovery: %+v", rsCold)
	}

	// Small mutation on the recovered store, delta snapshot, crash again.
	mutateShard(t, rec, ref, rand.New(rand.NewSource(5)), 1, 1)
	if _, err := rec.Snapshot(); err != nil {
		t.Fatal(err)
	}
	rec2, rsWarm, err := RecoverDurableStore(node, rec.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	if rsWarm.ChunksFetched == 0 || rsWarm.ChunksFetched >= rsCold.ChunksFetched {
		t.Fatalf("warm delta recovery fetched %d, cold fetched %d", rsWarm.ChunksFetched, rsCold.ChunksFetched)
	}
	if rsWarm.CacheHits == 0 {
		t.Fatalf("warm delta recovery hit nothing: %+v", rsWarm)
	}
	got, err := rec2.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want := mapDigest(t, ref); got != want {
		t.Fatal("warm delta recovery differs from reference")
	}
}

// TestDurableGCRetiresCoveredSegments: GC retires only sealed epochs a
// durable snapshot covers, honors the retention margin, refuses to collect
// with no snapshot published, and recovery stays bit-identical afterwards.
func TestDurableGCRetiresCoveredSegments(t *testing.T) {
	ds, cfg := newDurableFixture(t, 2, 2)
	cfg.GCRetainEpochs = -1 // no margin: everything covered is collectible
	ds, err := NewDurableStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := loadFixture(t, ds, 23)

	if g := ds.GC(); g.SegmentsRetired != 0 {
		t.Fatalf("GC before any snapshot retired %d segments", g.SegmentsRetired)
	}
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	g := ds.GC()
	if g.SegmentsRetired != 2 || g.BytesRetired == 0 {
		t.Fatalf("GC after snapshot: %+v", g)
	}
	// Tail records after the snapshot live at the durable epoch — GC must
	// never touch them, at any retention setting.
	rng := rand.New(rand.NewSource(9))
	mutateShard(t, ds, ref, rng, 0, 2)
	mutateShard(t, ds, ref, rng, 1, 2)
	if g := ds.GC(); g.SegmentsRetired != 0 {
		t.Fatalf("GC collected live-epoch segments: %+v", g)
	}
	rec, rs, err := RecoverDurableStore(coldNode(cfg), ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	if rs.RecordsReplayed == 0 {
		t.Fatal("post-GC recovery replayed nothing")
	}
	got, err := rec.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want := mapDigest(t, ref); got != want {
		t.Fatal("post-GC recovery differs from reference")
	}
}

// TestDurableGCRetentionMargin: with the default margin of 1, the newest
// sealed epoch survives GC even though a snapshot covers it.
func TestDurableGCRetentionMargin(t *testing.T) {
	ds, cfg := newDurableFixture(t, 2, 2)
	ref := loadFixture(t, ds, 29)
	rng := rand.New(rand.NewSource(31))
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mutateShard(t, ds, ref, rng, 0, 2)
	mutateShard(t, ds, ref, rng, 1, 2)
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Each shard now has sealed epochs {1, 2}; epoch 2 is the margin.
	g := ds.GC()
	if g.SegmentsRetired != 2 {
		t.Fatalf("GC with margin: %+v", g)
	}
	for i, segs := range ds.WALSegments() {
		if len(segs) != 2 || segs[0].Epoch != 2 || segs[1].Epoch != 3 {
			t.Fatalf("shard %d keeps %+v", i, segs)
		}
	}
	rec, _, err := RecoverDurableStore(coldNode(cfg), ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want := mapDigest(t, ref); got != want {
		t.Fatal("post-margin-GC recovery differs from reference")
	}
}

// TestDurableCrashBetweenSnapshotAndGC is the GC edge the satellite names:
// the process dies after the snapshot published but before the covered
// segments were retired. Recovery must skip the stale epochs cleanly, keep
// them attached, and let the recovered store's own GC retire them.
func TestDurableCrashBetweenSnapshotAndGC(t *testing.T) {
	ds, cfg := newDurableFixture(t, 2, 2)
	cfg.GCRetainEpochs = -1
	ds, err := NewDurableStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := loadFixture(t, ds, 37)
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mutateShard(t, ds, ref, rand.New(rand.NewSource(41)), 0, 2)
	// Crash here: sealed epoch-1 segments still on the medium, un-GC'd.
	segs := ds.WALSegments()
	if len(segs[0]) != 2 {
		t.Fatalf("expected stale+live segments, got %+v", segs[0])
	}
	rec, rs, err := RecoverDurableStore(coldNode(cfg), segs)
	if err != nil {
		t.Fatal(err)
	}
	// Stale epoch-1 records were NOT replayed (the snapshot covers them).
	if rs.RecordsReplayed != 1 {
		t.Fatalf("replayed %d records, want just the tail", rs.RecordsReplayed)
	}
	got, err := rec.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want := mapDigest(t, ref); got != want {
		t.Fatal("recovery with stale segments differs from reference")
	}
	// The stale segments survived recovery and the recovered store's GC
	// finishes the interrupted retirement.
	if g := rec.GC(); g.SegmentsRetired != 2 {
		t.Fatalf("post-recovery GC: %+v", g)
	}
	got2, err := rec.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Fatal("GC changed recovered state")
	}
}

// TestDurableGCConcurrentPutBatch races GC passes against a writer under
// -race: GC walks sealed segments under the WAL mutex while appends land
// in the live tail, so neither corrupts the other.
func TestDurableGCConcurrentPutBatch(t *testing.T) {
	ds, _ := newDurableFixture(t, 4, 2)
	loadFixture(t, ds, 43)
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(47))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			v := make([]byte, 32)
			rng.Read(v)
			if err := ds.PutBatch([]Pair{{Key: fmt.Sprintf("k-%04d", i%64), Value: v}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		ds.GC()
	}
	close(stop)
	wg.Wait()
	if _, _, err := RecoverDurableStore(coldNode(ds.cfg), ds.WALSegments()); err != nil {
		t.Fatal(err)
	}
}

// TestDurableDeltaChainRecovery is the property test: recovered state is
// bit-identical to the never-crashed reference across delta chains of
// length {1,2,5}, shard counts {1,2,4,8}, with and without GC between
// snapshots — and the recovered store keeps the chain going.
func TestDurableDeltaChainRecovery(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, chain := range []int{1, 2, 5} {
			for _, gc := range []bool{false, true} {
				t.Run(fmt.Sprintf("shards=%d/chain=%d/gc=%v", shards, chain, gc), func(t *testing.T) {
					ds, cfg := newDurableFixture(t, shards, 2)
					ref := loadFixture(t, ds, int64(53+shards+chain))
					if _, err := ds.Snapshot(); err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(int64(59 + chain)))
					for r := 0; r < chain; r++ {
						mutateShard(t, ds, ref, rng, r%shards, 2)
						if _, err := ds.Snapshot(); err != nil {
							t.Fatal(err)
						}
						if gc {
							ds.GC()
						}
					}
					// Post-snapshot tail the recovery must replay.
					mutateShard(t, ds, ref, rng, (chain+1)%shards, 1)

					rec, rs, err := RecoverDurableStore(coldNode(cfg), ds.WALSegments())
					if err != nil {
						t.Fatal(err)
					}
					if rs.RecordsReplayed == 0 {
						t.Fatal("no tail records replayed")
					}
					got, err := rec.StateDigest()
					if err != nil {
						t.Fatal(err)
					}
					if want := mapDigest(t, ref); got != want {
						t.Fatal("recovered state differs from reference")
					}
					// The chain continues on the recovered store: another
					// delta, another crash, still bit-identical.
					mutateShard(t, rec, ref, rng, 0, 1)
					st, err := rec.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if st.Seq != uint64(chain+2) {
						t.Fatalf("continued chain at seq %d, want %d", st.Seq, chain+2)
					}
					rec2, _, err := RecoverDurableStore(coldNode(cfg), rec.WALSegments())
					if err != nil {
						t.Fatal(err)
					}
					got2, err := rec2.StateDigest()
					if err != nil {
						t.Fatal(err)
					}
					if want := mapDigest(t, ref); got2 != want {
						t.Fatal("continued-chain recovery differs from reference")
					}
				})
			}
		}
	}
}

// tamperStore wraps a real registry's snapshot surface, rewriting what
// recovery reads and remembering every published chunk digest — the
// adversarial half of the chain tests.
type tamperStore struct {
	*registry.Registry
	// onRead rewrites (or suppresses, via ok=false) every sealed record
	// recovery fetches; nil passes records through.
	onRead func(name string, seq uint64, sealed []byte) ([]byte, bool)
	leaves []cryptbox.Digest
}

func (ts *tamperStore) PutBlobSet(m *transfer.Manifest, chunks [][]byte) (int, error) {
	ts.leaves = append(ts.leaves, m.Leaves...)
	return ts.Registry.PutBlobSet(m, chunks)
}

func (ts *tamperStore) LatestSnapshot(name string) (uint64, []byte, bool) {
	seq, sealed, ok := ts.Registry.LatestSnapshot(name)
	if !ok || ts.onRead == nil {
		return seq, sealed, ok
	}
	sealed, ok = ts.onRead(name, seq, sealed)
	return seq, sealed, ok
}

func (ts *tamperStore) SnapshotAt(name string, seq uint64) ([]byte, bool) {
	sealed, ok := ts.Registry.SnapshotAt(name, seq)
	if !ok || ts.onRead == nil {
		return sealed, ok
	}
	return ts.onRead(name, seq, sealed)
}

// deltaChainFixture builds a two-shard store with a two-link chain (full
// snapshot, then a delta where shard 1 reuses) behind a tamperStore, and
// returns the recovery config plus the expected digest.
func deltaChainFixture(t testing.TB) (DurableConfig, *tamperStore, [][]WALSegment, cryptbox.Digest) {
	t.Helper()
	reg := registry.New()
	ts := &tamperStore{Registry: reg}
	eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
	eng.Cache = container.NewBlobCache()
	eng.PullWorkers = 2
	sealKey, err := cryptbox.KeyFromBytes(bytes.Repeat([]byte{0xD1}, cryptbox.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DurableConfig{
		Shards: 2, Workers: 2, Seed: 99,
		Service: "test/durable", SealKey: sealKey,
		Registry: ts, Engine: eng,
	}
	ds, err := NewDurableStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := loadFixture(t, ds, 61)
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mutateShard(t, ds, ref, rand.New(rand.NewSource(67)), 0, 2)
	if st, err := ds.Snapshot(); err != nil || st.ShardsReused == 0 {
		t.Fatalf("fixture delta snapshot: %+v, %v", st, err)
	}
	return cfg, ts, ds.WALSegments(), mapDigest(t, ref)
}

// TestDurableChainSpliceRefusal drives the explicit adversarial cases:
// every rewritten chain must be refused, never restored from.
func TestDurableChainSpliceRefusal(t *testing.T) {
	recoverWith := func(t *testing.T, onRead func(string, uint64, []byte) ([]byte, bool)) error {
		t.Helper()
		cfg, ts, segs, want := deltaChainFixture(t)
		ts.onRead = onRead
		rec, _, err := RecoverDurableStore(coldNode(cfg), segs)
		if err != nil {
			return err
		}
		got, derr := rec.StateDigest()
		if derr != nil {
			t.Fatal(derr)
		}
		if got != want {
			t.Fatal("tampered chain recovered to wrong state without an error")
		}
		return nil
	}

	t.Run("passthrough", func(t *testing.T) {
		if err := recoverWith(t, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("spliced-parent-prefix", func(t *testing.T) {
		// Re-pointing a reuse head's cleartext parent at seq 0: the AAD
		// changes with it, so authentication must fail.
		err := recoverWith(t, func(name string, seq uint64, sealed []byte) ([]byte, bool) {
			if seq == 2 {
				out := append([]byte(nil), sealed...)
				binary.BigEndian.PutUint64(out, 0)
				return out, true
			}
			return sealed, true
		})
		if err == nil {
			t.Fatal("spliced parent pointer accepted")
		}
	})
	t.Run("missing-link", func(t *testing.T) {
		err := recoverWith(t, func(name string, seq uint64, sealed []byte) ([]byte, bool) {
			if seq == 1 {
				return nil, false // the parent record vanished
			}
			return sealed, true
		})
		if err == nil {
			t.Fatal("missing chain link accepted")
		}
	})
	t.Run("record-bitflip", func(t *testing.T) {
		err := recoverWith(t, func(name string, seq uint64, sealed []byte) ([]byte, bool) {
			out := append([]byte(nil), sealed...)
			out[len(out)-1] ^= 0x01
			return out, true
		})
		if err == nil {
			t.Fatal("bitflipped record accepted")
		}
	})
	t.Run("rollback-substitution", func(t *testing.T) {
		// Serving the seq-1 record in place of the seq-2 head replays old
		// state; the AAD binds seq, so it must fail.
		cfg, ts, segs, _ := deltaChainFixture(t)
		ts.onRead = func(name string, seq uint64, sealed []byte) ([]byte, bool) {
			if seq == 2 {
				if old, ok := ts.Registry.SnapshotAt(name, 1); ok {
					return old, true
				}
			}
			return sealed, true
		}
		if _, _, err := RecoverDurableStore(coldNode(cfg), segs); err == nil {
			t.Fatal("rollback substitution accepted")
		}
	})
	t.Run("tampered-manifest-chunk", func(t *testing.T) {
		// A reuse pointer resolving to a manifest whose chunks were
		// tampered in the registry: the verified pull must refuse them.
		cfg, ts, segs, _ := deltaChainFixture(t)
		tampered := 0
		for _, d := range ts.leaves {
			if ts.Registry.TamperBlob(d, func(b []byte) []byte {
				out := append([]byte(nil), b...)
				out[0] ^= 0xFF
				return out
			}) {
				tampered++
			}
		}
		if tampered == 0 {
			t.Fatal("nothing to tamper")
		}
		if _, _, err := RecoverDurableStore(coldNode(cfg), segs); err == nil {
			t.Fatal("tampered snapshot chunks accepted")
		}
	})
}

// FuzzRecoverSnapshotChain fuzzes the delta-chain walk with the mutation
// families the splice tests pin (re-pointed parents, dropped links,
// bitflips, truncation, tampered chunks). The invariant mirrors the WAL
// fuzz target's valid/torn/corrupt discipline: every input either recovers
// the exact reference state or is refused with an error — recovery never
// panics and never silently lands on different state.
func FuzzRecoverSnapshotChain(f *testing.F) {
	for sel := uint8(0); sel < 6; sel++ {
		f.Add(sel, uint16(3), uint64(0))
		f.Add(sel, uint16(0), uint64(2))
	}
	f.Add(uint8(1), uint16(1), uint64(1)) // identity splice: parent rewritten to itself
	f.Fuzz(func(t *testing.T, sel uint8, pos uint16, val uint64) {
		cfg, ts, segs, want := deltaChainFixture(t)
		switch sel % 6 {
		case 0: // passthrough
		case 1: // rewrite the cleartext parent prefix of one record
			ts.onRead = func(name string, seq uint64, sealed []byte) ([]byte, bool) {
				if seq == uint64(pos%2)+1 {
					out := append([]byte(nil), sealed...)
					binary.BigEndian.PutUint64(out, val)
					return out, true
				}
				return sealed, true
			}
		case 2: // drop one record (a missing link, or a vanished head)
			ts.onRead = func(name string, seq uint64, sealed []byte) ([]byte, bool) {
				if seq == uint64(pos%2)+1 {
					return nil, false
				}
				return sealed, true
			}
		case 3: // bitflip anywhere in the record
			ts.onRead = func(name string, seq uint64, sealed []byte) ([]byte, bool) {
				out := append([]byte(nil), sealed...)
				out[int(pos)%len(out)] ^= byte(val) | 1
				return out, true
			}
		case 4: // truncate the record
			ts.onRead = func(name string, seq uint64, sealed []byte) ([]byte, bool) {
				return append([]byte(nil), sealed[:int(pos)%len(sealed)]...), true
			}
		case 5: // tamper one published snapshot chunk in the registry
			if len(ts.leaves) > 0 {
				d := ts.leaves[int(pos)%len(ts.leaves)]
				ts.Registry.TamperBlob(d, func(b []byte) []byte {
					out := append([]byte(nil), b...)
					out[int(val%uint64(len(out)))] ^= 0xFF
					return out
				})
			}
		}
		rec, _, err := RecoverDurableStore(coldNode(cfg), segs)
		if err != nil {
			return // refused cleanly — the acceptable adversarial outcome
		}
		got, derr := rec.StateDigest()
		if derr != nil {
			t.Fatal(derr)
		}
		if got != want {
			t.Fatalf("sel=%d pos=%d: recovery accepted a tampered chain and diverged", sel%6, pos)
		}
	})
}
