// The durable sealed store: a ShardedStore whose state survives the
// process. Every shard pairs its in-enclave table with a sealed WAL
// (wal.go), and the store periodically publishes each shard's table as a
// content-addressed snapshot blob set to a registry. Crash recovery
// bootstraps a fresh store from the latest snapshot — pulled through the
// container engine's verified chunk path, so every chunk is digest-checked
// and the node BlobCache warms — then replays the current epoch's WAL tail.
//
// Key hierarchy: everything derives from one service seal key (in the
// plane, itself derived from the attested KeyBroker release), so a replica
// that cannot attest cannot open its own durable state:
//
//	SealKey ─ "store|svc"    → table value sealing (all shards)
//	        ├ "wal|svc|i"    → shard i's WAL sealing + record MACs
//	        └ "snap|svc|i"   → shard i's snapshot manifest sealing
//
// Topology vs execution: shard count, WAL bytes, snapshot chunking and all
// RecoveryStats are topology — shards are snapshotted and recovered in
// shard order, and the engine pull's stats are worker-invariant — so
// recovery figures are bit-identical across worker counts.
package kvstore

import (
	"encoding/json"
	"fmt"

	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

// SnapshotStore is the registry surface a durable store publishes to and
// recovers from (implemented by registry.Registry).
type SnapshotStore interface {
	PutBlobSet(m *transfer.Manifest, chunks [][]byte) error
	PublishSnapshot(name string, seq uint64, sealed []byte) error
	LatestSnapshot(name string) (seq uint64, sealed []byte, ok bool)
}

// DurableConfig sizes a durable sharded store.
type DurableConfig struct {
	// Shards/Workers/Seed/Platform/ShardBytes configure the underlying
	// accounted ShardedStore (ShardBytes defaults to 1 MiB).
	Shards     int
	Workers    int
	Seed       int64
	Platform   enclave.Config
	ShardBytes uint64
	// Service names the store's snapshots and logs in the registry.
	Service string
	// SealKey roots the store/WAL/snapshot key hierarchy; in the plane it
	// is derived from the KeyBroker-released service keys.
	SealKey cryptbox.Key
	// Registry receives snapshot blob sets and manifest records.
	Registry SnapshotStore
	// Engine pulls snapshot blob sets back on recovery (verified chunks,
	// shared node cache).
	Engine *container.Engine
	// SnapChunkSize is the snapshot chunk granularity (default 4 KiB);
	// smaller chunks dedup more across successive snapshots.
	SnapChunkSize int
}

// DurableStore is a ShardedStore with a sealed WAL per shard and
// content-addressed snapshots.
type DurableStore struct {
	*ShardedStore
	cfg      DurableConfig
	wals     []*WAL
	walKeys  []cryptbox.Key
	snapKeys []cryptbox.Key
	snapSeq  uint64
}

// snapshotManifest is the sealed record published per shard snapshot: which
// blob set holds the state, and which WAL epoch continues it.
type snapshotManifest struct {
	Service  string            `json:"service"`
	Shard    int               `json:"shard"`
	Seq      uint64            `json:"seq"`
	WALEpoch uint64            `json:"wal_epoch"`
	Manifest transfer.Manifest `json:"manifest"`
}

// snapshotAAD binds a sealed snapshot manifest to its name and sequence.
func snapshotAAD(name string, seq uint64) []byte {
	return []byte(fmt.Sprintf("kv-snap|%s|%d", name, seq))
}

func (cfg *DurableConfig) snapName(shard int) string {
	return fmt.Sprintf("%s/shard-%d", cfg.Service, shard)
}

func (cfg *DurableConfig) walName(shard int) string {
	return "wal/" + cfg.snapName(shard)
}

// NewDurableStore builds an empty durable store (WALs at epoch 1).
func NewDurableStore(cfg DurableConfig) (*DurableStore, error) {
	if cfg.Registry == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("kvstore: durable store %q needs a registry and an engine", cfg.Service)
	}
	if cfg.ShardBytes == 0 {
		cfg.ShardBytes = 1 << 20
	}
	if cfg.SnapChunkSize == 0 {
		cfg.SnapChunkSize = 4096
	}
	storeKey, err := cryptbox.DeriveKey(cfg.SealKey, "store|"+cfg.Service)
	if err != nil {
		return nil, err
	}
	ss, err := NewShardedStore(storeKey, ShardedStoreConfig{
		Shards: cfg.Shards, Workers: cfg.Workers, Seed: cfg.Seed,
		Accounted: true, Platform: cfg.Platform, ShardBytes: cfg.ShardBytes,
	})
	if err != nil {
		return nil, err
	}
	ds := &DurableStore{ShardedStore: ss, cfg: cfg}
	for i := 0; i < ss.Shards(); i++ {
		wk, err := cryptbox.DeriveKey(cfg.SealKey, fmt.Sprintf("wal|%s|%d", cfg.Service, i))
		if err != nil {
			return nil, err
		}
		sk, err := cryptbox.DeriveKey(cfg.SealKey, fmt.Sprintf("snap|%s|%d", cfg.Service, i))
		if err != nil {
			return nil, err
		}
		ds.walKeys = append(ds.walKeys, wk)
		ds.snapKeys = append(ds.snapKeys, sk)
		ds.wals = append(ds.wals, NewWAL(wk, cfg.walName(i), 1))
	}
	return ds, nil
}

// PutBatch logs every shard's slice of the batch as one group-commit WAL
// record, then applies the batch to the table. The WAL appends run in
// shard order before the fan-out, so log bytes are bit-identical for any
// worker count.
func (ds *DurableStore) PutBatch(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	groups := make([][]WALOp, ds.Shards())
	for _, p := range pairs {
		i := ds.shardOf(p.Key)
		groups[i] = append(groups[i], WALOp{Key: p.Key, Value: p.Value})
	}
	for i, g := range groups {
		if err := ds.wals[i].Append(g); err != nil {
			return fmt.Errorf("kvstore: wal shard %d: %w", i, err)
		}
	}
	return ds.ShardedStore.PutBatch(pairs)
}

// Delete logs and applies one deletion.
func (ds *DurableStore) Delete(key string) (bool, error) {
	i := ds.shardOf(key)
	if err := ds.wals[i].Append([]WALOp{{Key: key, Delete: true}}); err != nil {
		return false, fmt.Errorf("kvstore: wal shard %d: %w", i, err)
	}
	return ds.ShardedStore.Delete(key), nil
}

// WALBytes returns each shard's durable log bytes — what survives a crash
// alongside the registry's snapshots.
func (ds *DurableStore) WALBytes() [][]byte {
	out := make([][]byte, len(ds.wals))
	for i, w := range ds.wals {
		out[i] = w.Bytes()
	}
	return out
}

// SnapshotSeq returns the sequence of the last published snapshot (0 =
// never snapshotted).
func (ds *DurableStore) SnapshotSeq() uint64 { return ds.snapSeq }

// Snapshot publishes every shard's table as a content-addressed blob set
// plus a sealed manifest record, then compacts each WAL into the next
// epoch. Successive snapshots of mostly-unchanged state dedup
// chunk-for-chunk in the registry (convergent chunks). Shards publish in
// shard order — deterministic bytes, names and sequence for any worker
// count.
func (ds *DurableStore) Snapshot() (uint64, error) {
	seq := ds.snapSeq + 1
	for i, sh := range ds.shards {
		sh.mu.Lock()
		pairs, err := sh.st.Range("", "")
		sh.mu.Unlock()
		if err != nil {
			return 0, err
		}
		ops := make([]WALOp, len(pairs))
		for j, p := range pairs {
			ops[j] = WALOp{Key: p.Key, Value: p.Value}
		}
		payload, err := encodeWALOps(ops)
		if err != nil {
			return 0, err
		}
		name := ds.cfg.snapName(i)
		m, chunks, err := transfer.PackConvergent(name, payload, ds.cfg.SnapChunkSize)
		if err != nil {
			return 0, err
		}
		if err := ds.cfg.Registry.PutBlobSet(m, chunks); err != nil {
			return 0, err
		}
		man, err := json.Marshal(snapshotManifest{
			Service: ds.cfg.Service, Shard: i, Seq: seq,
			WALEpoch: ds.wals[i].Epoch() + 1, Manifest: *m,
		})
		if err != nil {
			return 0, err
		}
		sealed, err := sealDeterministic(ds.snapKeys[i], man, snapshotAAD(name, seq))
		if err != nil {
			return 0, err
		}
		if err := ds.cfg.Registry.PublishSnapshot(name, seq, sealed); err != nil {
			return 0, err
		}
		ds.wals[i].Reset(ds.wals[i].Epoch() + 1)
	}
	ds.snapSeq = seq
	return seq, nil
}

// RecoveryStats is what a crash-recovery run cost. Every field is
// topology: bit-identical across worker counts.
type RecoveryStats struct {
	// SnapshotBootstrapCycles sums the verified-pull and table-rebuild
	// cycles of loading every shard's snapshot.
	SnapshotBootstrapCycles sim.Cycles
	// LogReplayCycles sums the cycles of replaying every shard's WAL tail.
	LogReplayCycles sim.Cycles
	// RecordsReplayed counts WAL records applied across shards.
	RecordsReplayed int
	// SnapshotPairs counts records restored from snapshots.
	SnapshotPairs int
	// ChunksFetched/CacheHits aggregate the snapshot pulls' chunk traffic —
	// a second recovery on the same node hits the warm BlobCache.
	ChunksFetched int
	CacheHits     int
}

// applyShardOps replays ops into one shard in order, returning the cycle
// delta the replay charged to the shard's memory.
func (ds *DurableStore) applyShardOps(i int, ops []WALOp) (sim.Cycles, error) {
	sh := ds.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var before sim.Cycles
	if sh.mem != nil {
		before = sh.mem.Cycles()
	}
	for _, op := range ops {
		if op.Delete {
			sh.st.Delete(op.Key)
			continue
		}
		if err := sh.st.Put(op.Key, op.Value); err != nil {
			return 0, err
		}
	}
	if sh.mem != nil {
		return sh.mem.Cycles() - before, nil
	}
	return 0, nil
}

// RecoverDurableStore rebuilds a durable store after a crash from what
// survives: the registry's snapshots plus each shard's WAL bytes (nil/short
// entries mean that shard's log was lost entirely). Shards recover in
// shard order; each bootstraps from its latest snapshot through the
// engine's verified pull, then replays its WAL tail under the torn-tail
// discipline. The returned store is ready for new appends.
func RecoverDurableStore(cfg DurableConfig, walBytes [][]byte) (*DurableStore, RecoveryStats, error) {
	ds, err := NewDurableStore(cfg)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	var rs RecoveryStats
	for i := 0; i < ds.Shards(); i++ {
		name := ds.cfg.snapName(i)
		epoch := uint64(1)
		seq, sealed, ok := ds.cfg.Registry.LatestSnapshot(name)
		if ok {
			box, err := cryptbox.NewBox(ds.snapKeys[i])
			if err != nil {
				return nil, rs, err
			}
			raw, err := box.Open(sealed, snapshotAAD(name, seq))
			if err != nil {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s seq %d failed authentication: %w", name, seq, err)
			}
			var man snapshotManifest
			if err := json.Unmarshal(raw, &man); err != nil {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s: %w", name, err)
			}
			if man.Service != cfg.Service || man.Shard != i || man.Seq != seq {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s names %s/shard-%d seq %d", name, man.Service, man.Shard, man.Seq)
			}
			payload, ps, err := cfg.Engine.PullBlobSet(&man.Manifest, name)
			if err != nil {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s: %w", name, err)
			}
			ops, err := decodeWALOps(payload)
			if err != nil {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s: %w", name, err)
			}
			applied, err := ds.applyShardOps(i, ops)
			if err != nil {
				return nil, rs, err
			}
			rs.SnapshotBootstrapCycles += ps.SerialCycles + applied
			rs.SnapshotPairs += len(ops)
			rs.ChunksFetched += ps.ChunksFetch
			rs.CacheHits += ps.CacheHits
			epoch = man.WALEpoch
			if ds.snapSeq < seq {
				ds.snapSeq = seq
			}
		}
		var buf []byte
		if i < len(walBytes) {
			buf = walBytes[i]
		}
		w, batches, err := RecoverWAL(ds.walKeys[i], ds.cfg.walName(i), epoch, buf)
		if err != nil {
			return nil, rs, fmt.Errorf("kvstore: shard %d: %w", i, err)
		}
		ds.wals[i] = w
		for _, ops := range batches {
			applied, err := ds.applyShardOps(i, ops)
			if err != nil {
				return nil, rs, err
			}
			rs.LogReplayCycles += applied
		}
		rs.RecordsReplayed += len(batches)
	}
	return ds, rs, nil
}

// StateDigest returns a digest of the store's decrypted contents in global
// key order — the bit-identity check between a recovered store and a
// never-crashed twin.
func (ss *ShardedStore) StateDigest() (cryptbox.Digest, error) {
	pairs, err := ss.Range("", "")
	if err != nil {
		return cryptbox.Digest{}, err
	}
	ops := make([]WALOp, len(pairs))
	for i, p := range pairs {
		ops[i] = WALOp{Key: p.Key, Value: p.Value}
	}
	payload, err := encodeWALOps(ops)
	if err != nil {
		return cryptbox.Digest{}, err
	}
	return cryptbox.Sum(payload), nil
}
