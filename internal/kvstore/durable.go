// The durable sealed store: a ShardedStore whose state survives the
// process. Every shard pairs its in-enclave table with a sealed WAL
// (wal.go), and the store periodically publishes each shard's table as a
// content-addressed snapshot blob set to a registry. Crash recovery
// bootstraps a fresh store from the latest snapshot — pulled through the
// container engine's verified chunk path, so every chunk is digest-checked
// and the node BlobCache warms — then replays the post-snapshot WAL tail.
//
// Snapshots are incremental: the store tracks which shards changed since
// the last snapshot, and a clean shard publishes a tiny *reuse* record
// pointing at its parent sequence instead of re-packing its table. The
// records form a delta chain seq → parent seq per shard; recovery walks
// the chain down to the nearest packed manifest. Both seq and parent are
// bound into the sealed record's AAD, so a chain cannot be spliced: a
// record re-pointed at a different parent, or republished at a different
// sequence, fails authentication. Changed shards pack convergently, so
// unchanged chunks within a changed shard still dedup in the registry.
//
// WAL epochs are the retention unit. A packed shard rolls its WAL into the
// next epoch (the sealed previous epoch stays on the durable medium); a
// reused shard keeps its current — empty — epoch. GC retires sealed
// segments strictly below the newest durable snapshot's epoch, behind a
// configurable retention margin, so the crash window never widens.
//
// Key hierarchy: everything derives from one service seal key (in the
// plane, itself derived from the attested KeyBroker release), so a replica
// that cannot attest cannot open its own durable state:
//
//	SealKey ─ "store|svc"    → table value sealing (all shards)
//	        ├ "wal|svc|i"    → shard i's WAL sealing + record MACs
//	        └ "snap|svc|i"   → shard i's snapshot manifest sealing
//
// Topology vs execution: shard count, WAL bytes, snapshot chunking and all
// Snapshot/GC/Recovery stats are topology — shards are snapshotted and
// recovered in shard order, and the engine pull's stats are
// worker-invariant — so every figure is bit-identical across worker counts.
package kvstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

// ErrSnapshotChain marks a delta chain that cannot be trusted: a spliced
// or cyclic parent pointer, a missing link, or a record that fails
// authentication. Recovery must fail loudly rather than restore from it.
var ErrSnapshotChain = errors.New("kvstore: snapshot chain invalid")

// SnapshotStore is the registry surface a durable store publishes to and
// recovers from (implemented by registry.Registry). PutBlobSet reports how
// many chunks were newly stored (the rest dedup'd against existing blobs);
// SnapshotAt serves historical records so recovery can walk delta chains.
type SnapshotStore interface {
	PutBlobSet(m *transfer.Manifest, chunks [][]byte) (stored int, err error)
	PublishSnapshot(name string, seq uint64, sealed []byte) error
	LatestSnapshot(name string) (seq uint64, sealed []byte, ok bool)
	SnapshotAt(name string, seq uint64) (sealed []byte, ok bool)
}

// DurableConfig sizes a durable sharded store.
type DurableConfig struct {
	// Shards/Workers/Seed/Platform/ShardBytes configure the underlying
	// accounted ShardedStore (ShardBytes defaults to 1 MiB).
	Shards     int
	Workers    int
	Seed       int64
	Platform   enclave.Config
	ShardBytes uint64
	// Service names the store's snapshots and logs in the registry.
	Service string
	// SealKey roots the store/WAL/snapshot key hierarchy; in the plane it
	// is derived from the KeyBroker-released service keys.
	SealKey cryptbox.Key
	// Registry receives snapshot blob sets and manifest records.
	Registry SnapshotStore
	// Engine pulls snapshot blob sets back on recovery (verified chunks,
	// shared node cache).
	Engine *container.Engine
	// SnapChunkSize is the snapshot chunk granularity (default 4 KiB);
	// smaller chunks dedup more across successive snapshots.
	SnapChunkSize int
	// GCRetainEpochs is GC's retention margin: the newest K sealed WAL
	// epochs per shard survive collection even when a snapshot covers
	// them (default 1; -1 keeps no margin). GC never touches epochs at
	// or after the newest durable snapshot regardless.
	GCRetainEpochs int
}

// DurableStore is a ShardedStore with a sealed WAL per shard,
// content-addressed incremental snapshots, and WAL-segment GC.
type DurableStore struct {
	*ShardedStore
	cfg      DurableConfig
	wals     []*WAL
	walKeys  []cryptbox.Key
	snapKeys []cryptbox.Key
	snapSeq  uint64
	// dirty marks shards mutated since their last packed snapshot; a clean
	// shard's next snapshot record reuses its parent manifest.
	dirty []bool
	// durableEpoch is, per shard, the first WAL epoch recovery would
	// replay over the newest published snapshot — the GC floor. 0 means
	// no snapshot covers the shard yet and nothing is collectible.
	durableEpoch []uint64
}

// snapshotManifest is the sealed record published per shard snapshot: a
// delta-chain link. A packed record (Reuse false) carries the blob-set
// manifest holding the shard's table; a reuse record (Reuse true) carries
// no manifest and defers to Parent. WALEpoch is the first epoch recovery
// replays on top — for a packed shard the fresh epoch the WAL rolled
// into, for a reused shard its current (empty at publish time) epoch.
type snapshotManifest struct {
	Service  string             `json:"service"`
	Shard    int                `json:"shard"`
	Seq      uint64             `json:"seq"`
	Parent   uint64             `json:"parent"`
	WALEpoch uint64             `json:"wal_epoch"`
	Reuse    bool               `json:"reuse,omitempty"`
	Manifest *transfer.Manifest `json:"manifest,omitempty"`
}

// snapshotAAD binds a sealed snapshot record to its name, sequence AND
// parent sequence — the anti-splice measure: re-pointing a record at a
// different parent changes the AAD and fails authentication.
func snapshotAAD(name string, seq, parent uint64) []byte {
	return []byte(fmt.Sprintf("kv-snap|%s|%d|%d", name, seq, parent))
}

// sealSnapshotRecord frames a chain link for the registry: the parent
// sequence in cleartext (8 bytes big-endian, so the opener can reconstruct
// the AAD) followed by the sealed JSON record. The cleartext prefix is
// untrusted input — authentication confirms it, because it feeds the AAD.
func sealSnapshotRecord(key cryptbox.Key, man snapshotManifest, name string) ([]byte, error) {
	raw, err := json.Marshal(man)
	if err != nil {
		return nil, err
	}
	sealed, err := sealDeterministic(key, raw, snapshotAAD(name, man.Seq, man.Parent))
	if err != nil {
		return nil, err
	}
	out := binary.BigEndian.AppendUint64(make([]byte, 0, 8+len(sealed)), man.Parent)
	return append(out, sealed...), nil
}

func (cfg *DurableConfig) snapName(shard int) string {
	return fmt.Sprintf("%s/shard-%d", cfg.Service, shard)
}

func (cfg *DurableConfig) walName(shard int) string {
	return "wal/" + cfg.snapName(shard)
}

// NewDurableStore builds an empty durable store (WALs at epoch 1).
func NewDurableStore(cfg DurableConfig) (*DurableStore, error) {
	if cfg.Registry == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("kvstore: durable store %q needs a registry and an engine", cfg.Service)
	}
	if cfg.ShardBytes == 0 {
		cfg.ShardBytes = 1 << 20
	}
	if cfg.SnapChunkSize == 0 {
		cfg.SnapChunkSize = 4096
	}
	if cfg.GCRetainEpochs == 0 {
		cfg.GCRetainEpochs = 1
	}
	storeKey, err := cryptbox.DeriveKey(cfg.SealKey, "store|"+cfg.Service)
	if err != nil {
		return nil, err
	}
	ss, err := NewShardedStore(storeKey, ShardedStoreConfig{
		Shards: cfg.Shards, Workers: cfg.Workers, Seed: cfg.Seed,
		Accounted: true, Platform: cfg.Platform, ShardBytes: cfg.ShardBytes,
	})
	if err != nil {
		return nil, err
	}
	ds := &DurableStore{ShardedStore: ss, cfg: cfg}
	for i := 0; i < ss.Shards(); i++ {
		wk, err := cryptbox.DeriveKey(cfg.SealKey, fmt.Sprintf("wal|%s|%d", cfg.Service, i))
		if err != nil {
			return nil, err
		}
		sk, err := cryptbox.DeriveKey(cfg.SealKey, fmt.Sprintf("snap|%s|%d", cfg.Service, i))
		if err != nil {
			return nil, err
		}
		ds.walKeys = append(ds.walKeys, wk)
		ds.snapKeys = append(ds.snapKeys, sk)
		ds.wals = append(ds.wals, NewWAL(wk, cfg.walName(i), 1))
	}
	ds.dirty = make([]bool, ss.Shards())
	ds.durableEpoch = make([]uint64, ss.Shards())
	return ds, nil
}

// PutBatch logs every shard's slice of the batch as one group-commit WAL
// record, then applies the batch to the table. The WAL appends run in
// shard order before the fan-out, so log bytes are bit-identical for any
// worker count.
func (ds *DurableStore) PutBatch(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	groups := make([][]WALOp, ds.Shards())
	for _, p := range pairs {
		i := ds.shardOf(p.Key)
		groups[i] = append(groups[i], WALOp{Key: p.Key, Value: p.Value})
	}
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		if err := ds.wals[i].Append(g); err != nil {
			return fmt.Errorf("kvstore: wal shard %d: %w", i, err)
		}
		ds.dirty[i] = true
	}
	return ds.ShardedStore.PutBatch(pairs)
}

// Delete logs and applies one deletion.
func (ds *DurableStore) Delete(key string) (bool, error) {
	i := ds.shardOf(key)
	if err := ds.wals[i].Append([]WALOp{{Key: key, Delete: true}}); err != nil {
		return false, fmt.Errorf("kvstore: wal shard %d: %w", i, err)
	}
	ds.dirty[i] = true
	return ds.ShardedStore.Delete(key), nil
}

// WALBytes returns each shard's live tail epoch bytes (see WALSegments for
// the full durable medium).
func (ds *DurableStore) WALBytes() [][]byte {
	out := make([][]byte, len(ds.wals))
	for i, w := range ds.wals {
		out[i] = w.Bytes()
	}
	return out
}

// WALSegments returns every shard's durable log segments — sealed epochs
// plus the live tail, what survives a crash alongside the registry's
// snapshots and what RecoverDurableStore consumes.
func (ds *DurableStore) WALSegments() [][]WALSegment {
	out := make([][]WALSegment, len(ds.wals))
	for i, w := range ds.wals {
		out[i] = w.Segments()
	}
	return out
}

// SnapshotSeq returns the sequence of the last published snapshot (0 =
// never snapshotted).
func (ds *DurableStore) SnapshotSeq() uint64 { return ds.snapSeq }

// SnapshotStats is what one Snapshot call published and cost. Every field
// is topology: bit-identical across worker counts.
type SnapshotStats struct {
	// Seq is the sequence the snapshot published under.
	Seq uint64
	// ShardsPacked counts shards whose table was re-packed and published;
	// ShardsReused counts clean shards that published a reuse record
	// pointing at their parent manifest instead.
	ShardsPacked int
	ShardsReused int
	// ChunksPublished counts chunks submitted for packed shards;
	// ChunksDeduped is how many of those the registry already held
	// (convergent chunks — unchanged content is bit-identical).
	ChunksPublished int
	ChunksDeduped   int
	// BytesPublished sums the submitted chunk bytes.
	BytesPublished int64
	// PackCycles sums the sim-cycles charged reading packed shards'
	// tables. Reused shards skip the read entirely — the delta saving.
	PackCycles sim.Cycles
}

// Snapshot publishes an incremental snapshot: dirty shards pack their
// table as a content-addressed blob set (unchanged chunks dedup), clean
// shards publish a reuse record chaining to their previous manifest.
// Packed shards roll their WAL into the next epoch; reused shards keep
// their current (empty) epoch. Shards publish in shard order —
// deterministic bytes, names and sequence for any worker count.
func (ds *DurableStore) Snapshot() (SnapshotStats, error) {
	return ds.snapshot(false)
}

// SnapshotFull packs and publishes every shard regardless of dirty state —
// the non-incremental baseline (and the shape every first snapshot takes).
func (ds *DurableStore) SnapshotFull() (SnapshotStats, error) {
	return ds.snapshot(true)
}

func (ds *DurableStore) snapshot(full bool) (SnapshotStats, error) {
	parent := ds.snapSeq
	st := SnapshotStats{Seq: parent + 1}
	for i, sh := range ds.shards {
		name := ds.cfg.snapName(i)
		if !full && !ds.dirty[i] && parent > 0 {
			// Clean shard with a published parent: chain, don't pack. The
			// current epoch is empty (nothing was appended since the shard
			// was last clean), so recovery replays from it directly.
			man := snapshotManifest{
				Service: ds.cfg.Service, Shard: i, Seq: st.Seq, Parent: parent,
				WALEpoch: ds.wals[i].Epoch(), Reuse: true,
			}
			rec, err := sealSnapshotRecord(ds.snapKeys[i], man, name)
			if err != nil {
				return st, err
			}
			if err := ds.cfg.Registry.PublishSnapshot(name, st.Seq, rec); err != nil {
				return st, err
			}
			ds.durableEpoch[i] = man.WALEpoch
			st.ShardsReused++
			continue
		}
		var before sim.Cycles
		if sh.mem != nil {
			before = sh.mem.Cycles()
		}
		sh.mu.Lock()
		pairs, err := sh.st.Range("", "")
		sh.mu.Unlock()
		if err != nil {
			return st, err
		}
		if sh.mem != nil {
			st.PackCycles += sh.mem.Cycles() - before
		}
		ops := make([]WALOp, len(pairs))
		for j, p := range pairs {
			ops[j] = WALOp{Key: p.Key, Value: p.Value}
		}
		payload, err := encodeWALOps(ops)
		if err != nil {
			return st, err
		}
		m, chunks, err := transfer.PackConvergent(name, payload, ds.cfg.SnapChunkSize)
		if err != nil {
			return st, err
		}
		stored, err := ds.cfg.Registry.PutBlobSet(m, chunks)
		if err != nil {
			return st, err
		}
		st.ChunksPublished += len(chunks)
		st.ChunksDeduped += len(chunks) - stored
		for _, c := range chunks {
			st.BytesPublished += int64(len(c))
		}
		nextEpoch := ds.wals[i].Epoch() + 1
		man := snapshotManifest{
			Service: ds.cfg.Service, Shard: i, Seq: st.Seq, Parent: parent,
			WALEpoch: nextEpoch, Manifest: m,
		}
		rec, err := sealSnapshotRecord(ds.snapKeys[i], man, name)
		if err != nil {
			return st, err
		}
		if err := ds.cfg.Registry.PublishSnapshot(name, st.Seq, rec); err != nil {
			return st, err
		}
		ds.wals[i].Roll(nextEpoch)
		ds.dirty[i] = false
		ds.durableEpoch[i] = nextEpoch
		st.ShardsPacked++
	}
	ds.snapSeq = st.Seq
	return st, nil
}

// GCStats is what one GC pass retired.
type GCStats struct {
	SegmentsRetired int
	BytesRetired    int64
}

// GC retires WAL segments a durable snapshot has made redundant: per
// shard, sealed epochs strictly below the newest published snapshot's
// replay epoch, keeping the configured retention margin of newest sealed
// epochs. It refuses to collect past the newest durable snapshot — a
// shard with no published snapshot retires nothing — so the set of bytes
// recovery needs is never narrowed.
func (ds *DurableStore) GC() GCStats {
	var g GCStats
	for i, w := range ds.wals {
		retired, bytes := w.GC(ds.durableEpoch[i], ds.cfg.GCRetainEpochs)
		g.SegmentsRetired += retired
		g.BytesRetired += bytes
	}
	return g
}

// RecoveryStats is what a crash-recovery run cost. Every field is
// topology: bit-identical across worker counts.
type RecoveryStats struct {
	// SnapshotBootstrapCycles sums the verified-pull and table-rebuild
	// cycles of loading every shard's snapshot.
	SnapshotBootstrapCycles sim.Cycles
	// LogReplayCycles sums the cycles of replaying every shard's WAL tail.
	LogReplayCycles sim.Cycles
	// RecordsReplayed counts WAL records applied across shards.
	RecordsReplayed int
	// SnapshotPairs counts records restored from snapshots.
	SnapshotPairs int
	// ChunksFetched/CacheHits aggregate the snapshot pulls' chunk traffic —
	// a warm recovery on the same node hits the BlobCache for every chunk
	// the previous pull (or a prior snapshot) already verified.
	ChunksFetched int
	CacheHits     int
	// ChainLinks counts delta-chain records resolved across shards (1 per
	// shard when its head is packed, more when reuse records chain back).
	ChainLinks int
}

// applyShardOps replays ops into one shard in order, returning the cycle
// delta the replay charged to the shard's memory.
func (ds *DurableStore) applyShardOps(i int, ops []WALOp) (sim.Cycles, error) {
	sh := ds.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var before sim.Cycles
	if sh.mem != nil {
		before = sh.mem.Cycles()
	}
	for _, op := range ops {
		if op.Delete {
			sh.st.Delete(op.Key)
			continue
		}
		if err := sh.st.Put(op.Key, op.Value); err != nil {
			return 0, err
		}
	}
	if sh.mem != nil {
		return sh.mem.Cycles() - before, nil
	}
	return 0, nil
}

// openSnapshotRecord authenticates and decodes one chain link. The
// cleartext parent prefix feeds the AAD, so a record spliced to another
// (name, seq, parent) position fails here; the decoded payload is then
// cross-checked against every position field.
func (ds *DurableStore) openSnapshotRecord(i int, name string, seq uint64, rec []byte) (*snapshotManifest, error) {
	if len(rec) < 8 {
		return nil, fmt.Errorf("%w: %s seq %d record truncated", ErrSnapshotChain, name, seq)
	}
	parent := binary.BigEndian.Uint64(rec)
	box, err := cryptbox.NewBox(ds.snapKeys[i])
	if err != nil {
		return nil, err
	}
	raw, err := box.Open(rec[8:], snapshotAAD(name, seq, parent))
	if err != nil {
		return nil, fmt.Errorf("%w: %s seq %d failed authentication: %v", ErrSnapshotChain, name, seq, err)
	}
	var man snapshotManifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%w: %s seq %d: %v", ErrSnapshotChain, name, seq, err)
	}
	if man.Service != ds.cfg.Service || man.Shard != i || man.Seq != seq || man.Parent != parent {
		return nil, fmt.Errorf("%w: %s seq %d record names %s/shard-%d seq %d parent %d",
			ErrSnapshotChain, name, seq, man.Service, man.Shard, man.Seq, man.Parent)
	}
	if man.Reuse == (man.Manifest != nil) {
		return nil, fmt.Errorf("%w: %s seq %d carries reuse=%v with manifest=%v",
			ErrSnapshotChain, name, seq, man.Reuse, man.Manifest != nil)
	}
	return &man, nil
}

// resolveSnapshotChain walks shard i's delta chain from the registry head
// down to the nearest packed manifest. Each link must authenticate at its
// own (seq, parent) position, parents must strictly decrease and exist —
// a missing link, cycle, or rollback past the root fails the walk.
func (ds *DurableStore) resolveSnapshotChain(i int) (head *snapshotManifest, man *transfer.Manifest, links int, err error) {
	name := ds.cfg.snapName(i)
	seq, rec, ok := ds.cfg.Registry.LatestSnapshot(name)
	if !ok {
		return nil, nil, 0, nil
	}
	head, err = ds.openSnapshotRecord(i, name, seq, rec)
	if err != nil {
		return nil, nil, 0, err
	}
	links = 1
	cur := head
	for cur.Reuse {
		if cur.Parent == 0 || cur.Parent >= cur.Seq {
			return nil, nil, links, fmt.Errorf("%w: %s seq %d reuse points at parent %d",
				ErrSnapshotChain, name, cur.Seq, cur.Parent)
		}
		prec, ok := ds.cfg.Registry.SnapshotAt(name, cur.Parent)
		if !ok {
			return nil, nil, links, fmt.Errorf("%w: %s seq %d parent record %d missing",
				ErrSnapshotChain, name, cur.Seq, cur.Parent)
		}
		pman, err := ds.openSnapshotRecord(i, name, cur.Parent, prec)
		if err != nil {
			return nil, nil, links, err
		}
		if pman.WALEpoch > cur.WALEpoch {
			return nil, nil, links, fmt.Errorf("%w: %s seq %d parent epoch %d after child epoch %d",
				ErrSnapshotChain, name, cur.Seq, pman.WALEpoch, cur.WALEpoch)
		}
		links++
		cur = pman
	}
	return head, cur.Manifest, links, nil
}

// RecoverDurableStore rebuilds a durable store after a crash from what
// survives: the registry's snapshot chains plus each shard's WAL segments
// (nil/missing entries mean that shard's log was lost entirely). Shards
// recover in shard order; each resolves its delta chain to the nearest
// packed manifest — pulling only chunks absent from the engine's node
// cache — then replays the segments at or after the head record's epoch
// under the torn-tail discipline (only the final, live segment may be
// torn; damage or epoch gaps anywhere earlier are hard errors). Sealed
// segments recovery skipped stay attached, so a post-recovery GC can
// still retire them. The returned store is ready for new appends.
func RecoverDurableStore(cfg DurableConfig, segments [][]WALSegment) (*DurableStore, RecoveryStats, error) {
	ds, err := NewDurableStore(cfg)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	var rs RecoveryStats
	for i := 0; i < ds.Shards(); i++ {
		name := ds.cfg.snapName(i)
		replayEpoch := uint64(1)
		head, man, links, err := ds.resolveSnapshotChain(i)
		if err != nil {
			return nil, rs, err
		}
		rs.ChainLinks += links
		if head != nil {
			payload, ps, err := cfg.Engine.PullBlobSet(man, name)
			if err != nil {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s: %w", name, err)
			}
			ops, err := decodeWALOps(payload)
			if err != nil {
				return nil, rs, fmt.Errorf("kvstore: snapshot %s: %w", name, err)
			}
			applied, err := ds.applyShardOps(i, ops)
			if err != nil {
				return nil, rs, err
			}
			rs.SnapshotBootstrapCycles += ps.SerialCycles + applied
			rs.SnapshotPairs += len(ops)
			rs.ChunksFetched += ps.ChunksFetch
			rs.CacheHits += ps.CacheHits
			replayEpoch = head.WALEpoch
			ds.durableEpoch[i] = replayEpoch
			if ds.snapSeq < head.Seq {
				ds.snapSeq = head.Seq
			}
		}
		var shardSegs []WALSegment
		if i < len(segments) {
			shardSegs = segments[i]
		}
		var stale, replay []WALSegment
		for j, s := range shardSegs {
			if j > 0 && s.Epoch <= shardSegs[j-1].Epoch {
				return nil, rs, fmt.Errorf("%w: shard %d segment epochs not ascending (%d after %d)",
					ErrWALCorrupt, i, s.Epoch, shardSegs[j-1].Epoch)
			}
			if s.Epoch >= replayEpoch {
				replay = append(replay, s)
			} else {
				stale = append(stale, s)
			}
		}
		for j, s := range replay {
			want := replayEpoch + uint64(j)
			if s.Epoch != want {
				return nil, rs, fmt.Errorf("%w: shard %d missing wal epoch %d (found %d)",
					ErrWALCorrupt, i, want, s.Epoch)
			}
		}
		walName := ds.cfg.walName(i)
		w := NewWAL(ds.walKeys[i], walName, replayEpoch)
		shardReplayed := 0
		for j, s := range replay {
			batches, prefix, err := DecodeWAL(ds.walKeys[i], walName, s.Epoch, s.Bytes)
			if err != nil {
				return nil, rs, fmt.Errorf("kvstore: shard %d epoch %d: %w", i, s.Epoch, err)
			}
			final := j == len(replay)-1
			if !final && prefix != len(s.Bytes) {
				// A torn tail is only explicable in the segment being
				// appended to when the process died — the live one.
				return nil, rs, fmt.Errorf("%w: shard %d sealed epoch %d torn at byte %d",
					ErrWALCorrupt, i, s.Epoch, prefix)
			}
			for _, ops := range batches {
				applied, err := ds.applyShardOps(i, ops)
				if err != nil {
					return nil, rs, err
				}
				rs.LogReplayCycles += applied
			}
			shardReplayed += len(batches)
			if final {
				w = &WAL{
					name: walName, key: ds.walKeys[i], epoch: s.Epoch,
					seq:     uint64(len(batches)),
					buf:     append([]byte(nil), s.Bytes[:prefix]...),
					records: len(batches),
				}
			}
		}
		retained := append([]WALSegment(nil), stale...)
		if len(replay) > 1 {
			retained = append(retained, replay[:len(replay)-1]...)
		}
		w.attachSegments(retained)
		ds.wals[i] = w
		// Replayed records are state the next snapshot must pack — a reuse
		// record here would point at a manifest missing the tail.
		ds.dirty[i] = shardReplayed > 0
		rs.RecordsReplayed += shardReplayed
	}
	return ds, rs, nil
}

// StateDigest returns a digest of the store's decrypted contents in global
// key order — the bit-identity check between a recovered store and a
// never-crashed twin.
func (ss *ShardedStore) StateDigest() (cryptbox.Digest, error) {
	pairs, err := ss.Range("", "")
	if err != nil {
		return cryptbox.Digest{}, err
	}
	ops := make([]WALOp, len(pairs))
	for i, p := range pairs {
		ops[i] = WALOp{Key: p.Key, Value: p.Value}
	}
	payload, err := encodeWALOps(ops)
	if err != nil {
		return cryptbox.Digest{}, err
	}
	return cryptbox.Sum(payload), nil
}
