package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"securecloud/internal/container"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/registry"
	"securecloud/internal/shield"
	"securecloud/internal/sim"
)

// newDurableFixture builds a durable store backed by a fresh registry and
// engine (with a node blob cache), plus the config to recover it with.
func newDurableFixture(t testing.TB, shards, workers int) (*DurableStore, DurableConfig) {
	t.Helper()
	reg := registry.New()
	eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
	eng.Cache = container.NewBlobCache()
	eng.PullWorkers = workers
	sealKey, err := cryptbox.KeyFromBytes(bytes.Repeat([]byte{0xD1}, cryptbox.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DurableConfig{
		Shards: shards, Workers: workers, Seed: 99,
		Service: "test/durable", SealKey: sealKey,
		Registry: reg, Engine: eng,
	}
	ds, err := NewDurableStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cfg
}

// genBatches produces a deterministic batch stream with overwrites across a
// small key space, so snapshots and replays exercise both inserts and
// updates.
func genBatches(seed int64, n, perBatch int) [][]Pair {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Pair, n)
	for i := range out {
		batch := make([]Pair, perBatch)
		for j := range batch {
			v := make([]byte, 24+rng.Intn(40))
			rng.Read(v)
			batch[j] = Pair{Key: fmt.Sprintf("key-%03d", rng.Intn(48)), Value: v}
		}
		out[i] = batch
	}
	return out
}

// applyToMap replays one batch into a plain map — the reference semantics
// recovery must reproduce.
func applyToMap(m map[string][]byte, batch []Pair) {
	for _, p := range batch {
		m[p.Key] = append([]byte(nil), p.Value...)
	}
}

// cloneSegments deep-copies a crash image so a test can tear one shard's
// tail without disturbing the shared original.
func cloneSegments(segs [][]WALSegment) [][]WALSegment {
	out := make([][]WALSegment, len(segs))
	for i, ss := range segs {
		out[i] = append([]WALSegment(nil), ss...)
	}
	return out
}

// mapDigest renders a reference map the way StateDigest renders a store.
func mapDigest(t testing.TB, m map[string][]byte) cryptbox.Digest {
	t.Helper()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ops := make([]WALOp, len(keys))
	for i, k := range keys {
		ops[i] = WALOp{Key: k, Value: m[k]}
	}
	payload, err := encodeWALOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	return cryptbox.Sum(payload)
}

// TestDurableSnapshotRecovery is the happy path: puts, snapshot, more puts,
// full crash, recover from snapshot + WAL tail, state bit-identical to a
// never-crashed reference; and a second recovery rides the warm blob cache.
func TestDurableSnapshotRecovery(t *testing.T) {
	ds, cfg := newDurableFixture(t, 4, 2)
	ref := map[string][]byte{}
	batches := genBatches(7, 6, 12)
	for i, b := range batches {
		if err := ds.PutBatch(b); err != nil {
			t.Fatal(err)
		}
		applyToMap(ref, b)
		if i == 2 {
			if _, err := ds.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := ds.Delete("key-000"); err != nil {
		t.Fatal(err)
	}
	delete(ref, "key-000")

	rec, rs, err := RecoverDurableStore(cfg, ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rec.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if want := mapDigest(t, ref); got != want {
		t.Fatal("recovered state differs from reference")
	}
	if rs.SnapshotBootstrapCycles == 0 || rs.LogReplayCycles == 0 || rs.RecordsReplayed == 0 {
		t.Fatalf("recovery stats empty: %+v", rs)
	}
	if rs.ChunksFetched == 0 || rs.CacheHits != 0 {
		t.Fatalf("cold first recovery: %+v", rs)
	}

	// A second recovery from the same survivors rides the now-warm node
	// cache — nothing fetched — and lands on the same state.
	rec2, rs2, err := RecoverDurableStore(cfg, ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	got2, err := rec2.StateDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Fatal("repeat recovery landed on different state")
	}
	if rs2.ChunksFetched != 0 || rs2.CacheHits != rs.ChunksFetched {
		t.Fatalf("warm second recovery: %+v", rs2)
	}

	// The recovered store keeps working: appends and snapshots continue the
	// epoch/sequence chain.
	if err := rec.PutBatch(batches[0]); err != nil {
		t.Fatal(err)
	}
	if st, err := rec.Snapshot(); err != nil || st.Seq != 2 {
		t.Fatalf("post-recovery snapshot: %+v, %v", st, err)
	}
}

// TestDurableColdRecoveryFetches pins the verified-pull integration: a
// recovering node with a cold cache fetches every snapshot chunk, and a
// second cold-ish recovery on the same node hits the warm cache instead.
func TestDurableColdRecoveryFetches(t *testing.T) {
	ds, cfg := newDurableFixture(t, 2, 2)
	for _, b := range genBatches(11, 4, 10) {
		if err := ds.PutBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ds.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// The replacement node shares the registry but not the blob cache.
	cold := cfg
	eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), cfg.Engine.Registry, nil)
	eng.Cache = container.NewBlobCache()
	eng.PullWorkers = cfg.Workers
	cold.Engine = eng

	_, rs1, err := RecoverDurableStore(cold, ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	if rs1.ChunksFetched == 0 || rs1.CacheHits != 0 {
		t.Fatalf("cold recovery: %+v", rs1)
	}
	_, rs2, err := RecoverDurableStore(cold, ds.WALSegments())
	if err != nil {
		t.Fatal(err)
	}
	if rs2.ChunksFetched != 0 || rs2.CacheHits != rs1.ChunksFetched {
		t.Fatalf("warm recovery: %+v", rs2)
	}
}

// TestDurableCrashEveryBoundary is the crash-recovery property test: shard
// 0's log dies at every record boundary and mid-record, with and without a
// snapshot underneath, across shard counts {1,2,4,8}; recovery must equal
// the reference state in which exactly the surviving records applied.
func TestDurableCrashEveryBoundary(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, snapshotAfter := range []int{0, 2} { // batch index; 0 = never
			t.Run(fmt.Sprintf("shards=%d/snapAfter=%d", shards, snapshotAfter), func(t *testing.T) {
				ds, cfg := newDurableFixture(t, shards, 2)
				batches := genBatches(int64(13+shards), 5, 12)

				ref := map[string][]byte{} // full replay, all shards
				var tailBatches [][]Pair   // shard-0 records in the current epoch
				for i, b := range batches {
					if err := ds.PutBatch(b); err != nil {
						t.Fatal(err)
					}
					applyToMap(ref, b)
					var s0 []Pair
					for _, p := range b {
						if ds.shardOf(p.Key) == 0 {
							s0 = append(s0, p)
						}
					}
					if len(s0) > 0 {
						tailBatches = append(tailBatches, s0)
					}
					if snapshotAfter > 0 && i == snapshotAfter-1 {
						if _, err := ds.Snapshot(); err != nil {
							t.Fatal(err)
						}
						tailBatches = nil // compacted into the snapshot
					}
				}
				segs := ds.WALSegments()
				tail := segs[0][len(segs[0])-1]
				bounds := recordBoundaries(t, tail.Bytes)
				if len(bounds)-1 != len(tailBatches) {
					t.Fatalf("%d shard-0 records, %d tail batches", len(bounds)-1, len(tailBatches))
				}

				// refAt(k): reference state with only the first k shard-0
				// tail records surviving; other shards always survive fully.
				refAt := func(k int) map[string][]byte {
					m := map[string][]byte{}
					// State as of the snapshot (or empty), shard 0 only.
					snapped := map[string][]byte{}
					for i := 0; i < snapshotAfter; i++ {
						applyToMap(snapped, batches[i])
					}
					for key, v := range snapped {
						if ds.shardOf(key) == 0 {
							m[key] = v
						}
					}
					for i := 0; i < k; i++ {
						applyToMap(m, tailBatches[i])
					}
					// Every other shard recovers everything.
					for key, v := range ref {
						if ds.shardOf(key) != 0 {
							m[key] = v
						}
					}
					return m
				}

				crashAt := func(name string, pos, survivors int) {
					t.Run(name, func(t *testing.T) {
						torn := cloneSegments(segs)
						last := len(torn[0]) - 1
						torn[0][last].Bytes = tail.Bytes[:pos]
						rec, rs, err := RecoverDurableStore(cfg, torn)
						if err != nil {
							t.Fatal(err)
						}
						got, err := rec.StateDigest()
						if err != nil {
							t.Fatal(err)
						}
						if want := mapDigest(t, refAt(survivors)); got != want {
							t.Fatalf("recovered state wrong with %d surviving records", survivors)
						}
						wantReplayed := survivors + (len(bounds)-1)*(len(segs)-1)
						if rs.RecordsReplayed != wantReplayed && shards > 1 {
							// Other shards' record counts can differ when a
							// batch left a shard empty; just require no
							// records were dropped from untouched shards.
							if rs.RecordsReplayed < survivors {
								t.Fatalf("replayed %d < surviving %d", rs.RecordsReplayed, survivors)
							}
						}
					})
				}

				for k := 0; k < len(bounds); k++ {
					crashAt(fmt.Sprintf("boundary-%d", k), bounds[k], k)
					if k < len(bounds)-1 {
						mid := bounds[k] + (bounds[k+1]-bounds[k])/2
						crashAt(fmt.Sprintf("midrecord-%d", k), mid, k)
					}
				}
			})
		}
	}
}

// TestDurableRecoveryWorkerInvariance pins RecoveryStats as topology: the
// same crash recovered at worker counts {1,2,4,8} yields bit-identical
// cycles, counts and state.
func TestDurableRecoveryWorkerInvariance(t *testing.T) {
	type outcome struct {
		rs     RecoveryStats
		digest cryptbox.Digest
	}
	var ref *outcome
	for _, workers := range []int{1, 2, 4, 8} {
		ds, cfg := newDurableFixture(t, 4, workers)
		batches := genBatches(29, 5, 12)
		for i, b := range batches {
			if err := ds.PutBatch(b); err != nil {
				t.Fatal(err)
			}
			if i == 2 {
				if _, err := ds.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Recover on a cold replacement node so chunk fetches are exercised
		// identically at every worker count.
		cold := cfg
		eng := container.NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), cfg.Engine.Registry, nil)
		eng.Cache = container.NewBlobCache()
		eng.PullWorkers = workers
		cold.Engine = eng
		rec, rs, err := RecoverDurableStore(cold, ds.WALSegments())
		if err != nil {
			t.Fatal(err)
		}
		d, err := rec.StateDigest()
		if err != nil {
			t.Fatal(err)
		}
		var cycles sim.Cycles = rs.SnapshotBootstrapCycles + rs.LogReplayCycles
		if cycles == 0 {
			t.Fatal("no recovery cycles charged")
		}
		if ref == nil {
			ref = &outcome{rs: rs, digest: d}
			continue
		}
		if rs != ref.rs || d != ref.digest {
			t.Fatalf("workers=%d drifted: %+v vs %+v", workers, rs, ref.rs)
		}
	}
}
