package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/fsshield"
)

func walTestKey(t testing.TB) cryptbox.Key {
	t.Helper()
	k, err := cryptbox.KeyFromBytes(bytes.Repeat([]byte{0x5A}, cryptbox.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// walTestBatches is a deterministic multi-record op stream with puts,
// overwrites and deletes.
func walTestBatches() [][]WALOp {
	return [][]WALOp{
		{{Key: "a", Value: []byte("one")}, {Key: "b", Value: []byte("two")}},
		{{Key: "a", Value: []byte("one-again")}, {Key: "c", Value: bytes.Repeat([]byte{7}, 300)}},
		{{Key: "b", Delete: true}, {Key: "d", Value: nil}},
	}
}

func buildWAL(t testing.TB, key cryptbox.Key, name string, epoch uint64, batches [][]WALOp) *WAL {
	t.Helper()
	w := NewWAL(key, name, epoch)
	for _, b := range batches {
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// recordBoundaries walks the frame lengths of a well-formed log.
func recordBoundaries(t testing.TB, buf []byte) []int {
	t.Helper()
	bounds := []int{0}
	off := 0
	for off < len(buf) {
		if len(buf[off:]) < 4 {
			t.Fatalf("trailing %d bytes", len(buf[off:]))
		}
		off += 4 + int(binary.BigEndian.Uint32(buf[off:]))
		bounds = append(bounds, off)
	}
	return bounds
}

func opsEqual(a, b []WALOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Delete != b[i].Delete || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

func TestWALRoundtrip(t *testing.T) {
	key := walTestKey(t)
	batches := walTestBatches()
	w := buildWAL(t, key, "wal/test", 3, batches)
	got, prefix, err := DecodeWAL(key, "wal/test", 3, w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if prefix != len(w.Bytes()) {
		t.Fatalf("prefix %d, want full %d", prefix, len(w.Bytes()))
	}
	if len(got) != len(batches) {
		t.Fatalf("decoded %d batches, want %d", len(got), len(batches))
	}
	for i := range batches {
		if !opsEqual(got[i], batches[i]) {
			t.Fatalf("batch %d mismatch: %v != %v", i, got[i], batches[i])
		}
	}
}

// TestWALDeterministic pins the dedup property: identical op streams at
// identical positions produce bit-identical log bytes.
func TestWALDeterministic(t *testing.T) {
	key := walTestKey(t)
	a := buildWAL(t, key, "wal/twin", 1, walTestBatches())
	b := buildWAL(t, key, "wal/twin", 1, walTestBatches())
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical appends produced different log bytes")
	}
}

// TestWALTornTail covers the clean-crash-point half of the discipline:
// damage confined to the final record truncates and continues.
func TestWALTornTail(t *testing.T) {
	key := walTestKey(t)
	batches := walTestBatches()
	w := buildWAL(t, key, "wal/torn", 1, batches)
	full := w.Bytes()
	bounds := recordBoundaries(t, full)
	lastStart := bounds[len(bounds)-2]

	cases := []struct {
		name string
		buf  []byte
		want int // surviving batches
	}{
		{"empty log", nil, 0},
		{"cut inside final length prefix", full[:lastStart+2], 2},
		{"cut mid final record", full[:lastStart+(len(full)-lastStart)/2], 2},
		{"final record missing one byte", full[:len(full)-1], 2},
		{"mac flip in final record", flip(full, len(full)-1), 2},
		{"body flip in final record", flip(full, lastStart+8), 2},
		{"only a partial first record", full[:bounds[1]/2], 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, prefix, err := DecodeWAL(key, "wal/torn", 1, tc.buf)
			if err != nil {
				t.Fatalf("torn tail must not be an error, got %v", err)
			}
			if len(got) != tc.want {
				t.Fatalf("survived %d batches, want %d", len(got), tc.want)
			}
			if prefix != bounds[tc.want] {
				t.Fatalf("prefix %d, want boundary %d", prefix, bounds[tc.want])
			}
			// A recovered handle must accept further appends cleanly.
			rw, rb, err := RecoverWAL(key, "wal/torn", 1, tc.buf)
			if err != nil || len(rb) != tc.want {
				t.Fatalf("RecoverWAL: %v, %d batches", err, len(rb))
			}
			if err := rw.Append([]WALOp{{Key: "post", Value: []byte("crash")}}); err != nil {
				t.Fatal(err)
			}
			again, _, err := DecodeWAL(key, "wal/torn", 1, rw.Bytes())
			if err != nil || len(again) != tc.want+1 {
				t.Fatalf("post-recovery append: %v, %d batches", err, len(again))
			}
		})
	}
}

// TestWALMidLogCorruption covers the hard-error half: the same damage
// before the final record cannot be a crash and must fail loudly.
func TestWALMidLogCorruption(t *testing.T) {
	key := walTestKey(t)
	w := buildWAL(t, key, "wal/mid", 1, walTestBatches())
	full := w.Bytes()
	bounds := recordBoundaries(t, full)

	cases := []struct {
		name string
		buf  []byte
	}{
		{"mac flip in first record", flip(full, bounds[1]-1)},
		{"body flip in first record", flip(full, 8)},
		{"mac flip in middle record", flip(full, bounds[2]-1)},
		{"length corruption mid-log", flip(full, bounds[1]+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := DecodeWAL(key, "wal/mid", 1, tc.buf)
			switch {
			case err == nil:
				// Length corruption can swallow the rest of the log into one
				// declared extent, which is indistinguishable from a torn
				// tail; everything else must be a hard error.
				if tc.name != "length corruption mid-log" {
					t.Fatal("mid-log corruption decoded cleanly")
				}
			case !errors.Is(err, ErrWALCorrupt):
				t.Fatalf("want ErrWALCorrupt, got %v", err)
			}
			if _, _, err := RecoverWAL(key, "wal/mid", 1, flip(full, bounds[1]-1)); !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("RecoverWAL must refuse corrupt logs, got %v", err)
			}
		})
	}
}

// TestWALPositionBinding: a record authenticated at one (name, epoch, seq)
// must not verify at any other position — the chunkAAD cut-and-paste guard.
func TestWALPositionBinding(t *testing.T) {
	key := walTestKey(t)
	one := [][]WALOp{{{Key: "x", Value: []byte("y")}}}
	w := buildWAL(t, key, "wal/pos", 1, one)
	buf := w.Bytes()
	if _, _, err := DecodeWALRecord(key, "wal/pos", 1, 0, buf); err != nil {
		t.Fatal(err)
	}
	for name, decode := range map[string]func() error{
		"wrong seq":   func() error { _, _, err := DecodeWALRecord(key, "wal/pos", 1, 7, buf); return err },
		"wrong epoch": func() error { _, _, err := DecodeWALRecord(key, "wal/pos", 2, 0, buf); return err },
		"wrong name":  func() error { _, _, err := DecodeWALRecord(key, "wal/other", 1, 0, buf); return err },
	} {
		if err := decode(); !errors.Is(err, ErrWALTorn) {
			// Sole record == final record, so misplacement reads as torn.
			t.Fatalf("%s: want position rejection, got %v", name, err)
		}
	}
}

// TestWALAuthenticatedGarbage: a record whose MAC verifies but whose
// authenticated payload does not decode is a hard error even at the tail —
// a crash cannot produce validly MAC'd garbage.
func TestWALAuthenticatedGarbage(t *testing.T) {
	key := walTestKey(t)
	name, epoch, seq := "wal/forged", uint64(1), uint64(0)
	aad := fsshield.ChunkAAD(name, epoch, int(seq), 0)
	// A structurally broken body (wrapped-key length overruns), MAC'd
	// correctly under the log key.
	body := make([]byte, 12)
	binary.BigEndian.PutUint32(body, 1<<30)
	tag := fsshield.MACChunk(key, body, aad)
	frame := binary.BigEndian.AppendUint32(nil, uint32(len(body)+cryptbox.MACSize))
	frame = append(frame, body...)
	frame = append(frame, tag[:]...)
	if _, _, err := DecodeWALRecord(key, name, epoch, seq, frame); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("authenticated garbage must be ErrWALCorrupt, got %v", err)
	}
	if _, _, err := DecodeWAL(key, name, epoch, frame); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("DecodeWAL must surface it too, got %v", err)
	}
}

// TestWALOpsCodecGuards exercises the forged-count and bounds guards of the
// op codec directly.
func TestWALOpsCodecGuards(t *testing.T) {
	huge := binary.BigEndian.AppendUint32(nil, 1<<31)
	if _, err := decodeWALOps(huge); err == nil {
		t.Fatal("forged count accepted")
	}
	if _, err := decodeWALOps([]byte{0, 0}); err == nil {
		t.Fatal("short buffer accepted")
	}
	valid, err := encodeWALOps([]WALOp{{Key: "k", Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeWALOps(append(valid, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := encodeWALOps([]WALOp{{Key: string(make([]byte, 1<<17))}}); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// flip returns a copy of buf with one bit flipped at i.
func flip(buf []byte, i int) []byte {
	cp := append([]byte(nil), buf...)
	cp[i] ^= 1
	return cp
}

// FuzzDecodeWALRecord mirrors the transfer/scbr forged-input guards: no
// input may panic or over-allocate, and every well-formed record the fuzzer
// mutates must either decode to the original ops or fail with a typed
// error.
func FuzzDecodeWALRecord(f *testing.F) {
	key, _ := cryptbox.KeyFromBytes(bytes.Repeat([]byte{0x5A}, cryptbox.KeySize))
	w := NewWAL(key, "wal/fuzz", 1)
	if err := w.Append([]WALOp{{Key: "a", Value: []byte("one")}, {Key: "b", Delete: true}}); err != nil {
		f.Fatal(err)
	}
	valid := w.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(flip(valid, len(valid)-1))
	f.Add(flip(valid, 8))
	f.Add([]byte{})
	f.Add(binary.BigEndian.AppendUint32(nil, 1<<31))
	huge := binary.BigEndian.AppendUint32(nil, 16)
	f.Add(append(huge, make([]byte, 16)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		ops, n, err := DecodeWALRecord(key, "wal/fuzz", 1, 0, data)
		if err != nil {
			if !errors.Is(err, ErrWALTorn) && !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("frame length %d out of range", n)
		}
		// A record the fuzzer failed to break must re-encode losslessly.
		payload, err := encodeWALOps(ops)
		if err != nil {
			t.Fatal(err)
		}
		back, err := decodeWALOps(payload)
		if err != nil || !opsEqual(ops, back) {
			t.Fatalf("roundtrip mismatch: %v", err)
		}
	})
}

// TestWALEpochReset pins the snapshot-compaction contract: Reset starts an
// empty log in the next epoch whose records bind to the new position.
func TestWALEpochReset(t *testing.T) {
	key := walTestKey(t)
	w := buildWAL(t, key, "wal/epoch", 1, walTestBatches())
	w.Reset(2)
	if w.Records() != 0 || len(w.Bytes()) != 0 || w.Epoch() != 2 {
		t.Fatalf("reset left records=%d bytes=%d epoch=%d", w.Records(), len(w.Bytes()), w.Epoch())
	}
	if err := w.Append([]WALOp{{Key: "e2", Value: []byte("v")}}); err != nil {
		t.Fatal(err)
	}
	// Under the wrong epoch the sole record fails its MAC; as the final
	// record that reads as a torn tail — zero batches survive.
	if b, prefix, err := DecodeWAL(key, "wal/epoch", 1, w.Bytes()); err != nil || len(b) != 0 || prefix != 0 {
		t.Fatalf("epoch-1 decode of epoch-2 log: %v, %d batches, prefix %d", err, len(b), prefix)
	}
	got, _, err := DecodeWAL(key, "wal/epoch", 2, w.Bytes())
	if err != nil || len(got) != 1 {
		t.Fatalf("epoch-2 decode: %v, %d batches", err, len(got))
	}
}
