package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// ShardedStoreConfig sizes a sharded secure key/value store.
type ShardedStoreConfig struct {
	// Shards is the number of store shards (0 = GOMAXPROCS). The shard
	// count is a *topology* parameter: it decides where each key lives and
	// therefore every simulated figure. Fix it when comparing runs; vary
	// Workers freely instead.
	Shards int
	// Workers bounds the fan-out of one batch operation across shards
	// (0 = GOMAXPROCS). Purely an execution parameter — simulated totals
	// are identical for any worker count.
	Workers int
	// Seed fixes each shard's skip-list geometry (shard i uses Seed+i).
	Seed int64
	// Accounted builds each shard on its own simulated platform + enclave
	// (shard-per-core), sized ShardBytes, configured by Platform. With
	// Accounted false the shards are plain data structures.
	Accounted  bool
	Platform   enclave.Config
	ShardBytes uint64
}

// storeShard is one shard: a Store plus the reader/writer lock that makes
// the snapshot-read discipline safe. Reads hold the read side and use
// Store.GetSnapshot (mutates nothing); Put/Delete/Range hold the write
// side.
type storeShard struct {
	mu  sync.RWMutex
	st  *Store
	enc *enclave.Enclave
	mem *enclave.Memory // nil when unaccounted
}

// ShardedStore is the concurrent form of the secure structured data store:
// keys are partitioned by hash across Shards independent Stores, each
// (when accounted) living in its own enclave on its own simulated platform
// — the shard-per-core deployment where every core owns a slice of the key
// space, as a partitioned storage cluster would across machines.
//
// Writes (Put/Delete and each shard's slice of a PutBatch) lock only their
// home shard. Point reads charge read-only snapshot spans under the shard's
// read lock, so concurrent reads never perturb one another's simulated
// costs. Batch operations fan out across shards through a bounded worker
// set while applying each shard's sub-batch in slice order, so aggregate
// sim-cycles and faults are bit-identical for any interleaving and any
// worker count; only the shard count changes the figures.
type ShardedStore struct {
	shards  []*storeShard
	workers int
}

// NewShardedStore builds the sharded store; every shard seals with key.
func NewShardedStore(key cryptbox.Key, cfg ShardedStoreConfig) (*ShardedStore, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ss := &ShardedStore{workers: cfg.Workers}
	for i := 0; i < cfg.Shards; i++ {
		sh := &storeShard{}
		var acct Accounting
		if cfg.Accounted {
			if cfg.ShardBytes == 0 {
				return nil, errors.New("kvstore: accounted sharded store needs ShardBytes")
			}
			enc, arena, err := enclave.NewWorker(cfg.Platform, cfg.ShardBytes, fmt.Sprintf("kv-shard-%d", i))
			if err != nil {
				return nil, err
			}
			acct = Accounting{Mem: enc.Memory(), Arena: arena}
			sh.enc = enc
			sh.mem = enc.Memory()
		}
		st, err := NewStore(key, Options{Seed: cfg.Seed + int64(i), Accounting: acct})
		if err != nil {
			return nil, err
		}
		sh.st = st
		ss.shards = append(ss.shards, sh)
	}
	return ss, nil
}

// shardOf maps a key to its home shard index: inlined FNV-1a over the
// string, allocation-free on the batch hot path.
func (ss *ShardedStore) shardOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(len(ss.shards)))
}

// Shards returns the shard count.
func (ss *ShardedStore) Shards() int { return len(ss.shards) }

// Put stores value under key in its home shard.
func (ss *ShardedStore) Put(key string, value []byte) error {
	sh := ss.shards[ss.shardOf(key)]
	sh.mu.Lock()
	err := sh.st.Put(key, value)
	sh.mu.Unlock()
	return err
}

// Get returns the value stored under key, charged through a read-only
// snapshot span. Safe for concurrent use with itself and GetBatch;
// Put/Delete serialize against the home shard only.
func (ss *ShardedStore) Get(key string) ([]byte, error) {
	sh := ss.shards[ss.shardOf(key)]
	sh.mu.RLock()
	v, err := sh.st.GetSnapshot(key)
	sh.mu.RUnlock()
	return v, err
}

// Delete removes key; it reports whether the key existed.
func (ss *ShardedStore) Delete(key string) bool {
	sh := ss.shards[ss.shardOf(key)]
	sh.mu.Lock()
	ok := sh.st.Delete(key)
	sh.mu.Unlock()
	return ok
}

// forEachShard runs fn(i) for every shard index across at most ss.workers
// concurrent workers.
func (ss *ShardedStore) forEachShard(fn func(int)) {
	sim.ParallelFor(len(ss.shards), ss.workers, fn)
}

// firstErr returns the lowest-shard-index error, so batch failures are
// deterministic regardless of worker interleaving.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PutBatch stores every pair, fanning out across shards. Within one shard
// pairs apply in slice order — later duplicates win, exactly as the
// sequential Store.PutBatch — so the resulting state and each shard's
// simulated costs are independent of the worker count.
func (ss *ShardedStore) PutBatch(pairs []Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	groups := make([][]Pair, len(ss.shards))
	for _, p := range pairs {
		i := ss.shardOf(p.Key)
		groups[i] = append(groups[i], p)
	}
	errs := make([]error, len(ss.shards))
	ss.forEachShard(func(i int) {
		if len(groups[i]) == 0 {
			return
		}
		sh := ss.shards[i]
		sh.mu.Lock()
		errs[i] = sh.st.PutBatch(groups[i])
		sh.mu.Unlock()
	})
	return firstErr(errs)
}

// GetBatch returns the values of keys, aligned by index, fanning out
// across shards with snapshot reads. Missing keys yield nil entries (no
// error); tampered records fail. Each shard reads its slice of the batch
// in request order under one read-lock hold, so totals are deterministic
// for any worker count.
func (ss *ShardedStore) GetBatch(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	groups := make([][]int, len(ss.shards))
	for i, k := range keys {
		s := ss.shardOf(k)
		groups[s] = append(groups[s], i)
	}
	errs := make([]error, len(ss.shards))
	ss.forEachShard(func(i int) {
		if len(groups[i]) == 0 {
			return
		}
		sh := ss.shards[i]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		for _, idx := range groups[i] {
			v, err := sh.st.GetSnapshot(keys[idx])
			if err != nil {
				if errors.Is(err, ErrNotFound) {
					continue
				}
				errs[i] = err
				return
			}
			out[idx] = v
		}
	})
	return out, firstErr(errs)
}

// Len returns the number of stored records across shards.
func (ss *ShardedStore) Len() int {
	n := 0
	for _, sh := range ss.shards {
		sh.mu.RLock()
		n += sh.st.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Keys returns all keys in global key order.
func (ss *ShardedStore) Keys() []string {
	var out []string
	for _, sh := range ss.shards {
		sh.mu.RLock()
		out = append(out, sh.st.Keys()...)
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Range returns all records with lo <= key < hi in global key order (empty
// hi means "to the end"), scanning shards in parallel and merging. The
// per-shard scan uses the mutating accounting path, so it takes each
// shard's write lock; per-shard costs stay deterministic because each
// shard runs exactly one sequential scan.
func (ss *ShardedStore) Range(lo, hi string) ([]Pair, error) {
	parts := make([][]Pair, len(ss.shards))
	errs := make([]error, len(ss.shards))
	ss.forEachShard(func(i int) {
		sh := ss.shards[i]
		sh.mu.Lock()
		parts[i], errs[i] = sh.st.Range(lo, hi)
		sh.mu.Unlock()
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Pair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// Cycles returns the total simulated cycles charged across all shard
// memories (zero when unaccounted). Order-independent under concurrent
// snapshot reads, so equal workloads report equal totals at any
// parallelism.
func (ss *ShardedStore) Cycles() sim.Cycles {
	var n sim.Cycles
	for _, sh := range ss.shards {
		if sh.mem != nil {
			n += sh.mem.Cycles()
		}
	}
	return n
}

// Faults returns total page faults across shard memories.
func (ss *ShardedStore) Faults() uint64 {
	var n uint64
	for _, sh := range ss.shards {
		if sh.mem != nil {
			n += sh.mem.Faults()
		}
	}
	return n
}

// ShardCycles returns each shard's simulated cycle total (benchmark hook:
// per-op deltas give the critical-path/serial decomposition).
func (ss *ShardedStore) ShardCycles() []sim.Cycles {
	out := make([]sim.Cycles, len(ss.shards))
	for i, sh := range ss.shards {
		if sh.mem != nil {
			out[i] = sh.mem.Cycles()
		}
	}
	return out
}

// ResetAccounting zeroes every shard memory's ledger and fault counter.
func (ss *ShardedStore) ResetAccounting() {
	for _, sh := range ss.shards {
		if sh.mem != nil {
			sh.mem.ResetAccounting()
		}
	}
}

// EqualSharded reports whether a sharded store and a plain store hold
// identical records (test helper; decrypts both sides).
func EqualSharded(a *ShardedStore, b *Store) (bool, error) {
	pa, err := a.Range("", "")
	if err != nil {
		return false, err
	}
	pb, err := b.Range("", "")
	if err != nil {
		return false, err
	}
	if len(pa) != len(pb) {
		return false, nil
	}
	for i := range pa {
		if pa[i].Key != pb[i].Key || !bytes.Equal(pa[i].Value, pb[i].Value) {
			return false, nil
		}
	}
	return true, nil
}
