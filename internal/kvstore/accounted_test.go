package kvstore

import (
	"fmt"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// accountedStore builds a store charging into a fresh enclave view.
func accountedStore(t *testing.T) (*Store, *enclave.Memory) {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	enc, err := p.ECreate(32<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("kv")); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}
	arena, err := enc.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	var k cryptbox.Key
	k[0] = 7
	s, err := NewAccounted(k, 1, Accounting{Mem: enc.Memory(), Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	return s, enc.Memory()
}

func TestAccountedStoreChargesTraversals(t *testing.T) {
	s, mem := accountedStore(t)
	mem.ResetAccounting()
	for i := 0; i < 200; i++ {
		if err := s.Put(fmt.Sprintf("meter-%04d", i), []byte("1.21 kW")); err != nil {
			t.Fatal(err)
		}
	}
	afterPut := mem.Cycles()
	if afterPut == 0 {
		t.Fatal("accounted Put charged no cycles")
	}
	if _, err := s.Get("meter-0100"); err != nil {
		t.Fatal(err)
	}
	if mem.Cycles() == afterPut {
		t.Fatal("accounted Get charged no cycles")
	}
}

func TestAccountedStoreBehavesLikePlain(t *testing.T) {
	acc, _ := accountedStore(t)
	var k cryptbox.Key
	k[0] = 7
	plain, err := New(k, 1) // same seed: identical skip-list geometry
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%03d", (i*37)%100)
		val := []byte(fmt.Sprintf("v%d", i))
		if err := acc.Put(key, val); err != nil {
			t.Fatal(err)
		}
		if err := plain.Put(key, val); err != nil {
			t.Fatal(err)
		}
	}
	acc.Delete("k037")
	plain.Delete("k037")
	eq, err := Equal(acc, plain)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("accounted store diverged from plain store")
	}
	ra, err := acc.Range("k010", "k020")
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Range("k010", "k020")
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rp) {
		t.Fatalf("accounted Range returned %d records, plain %d", len(ra), len(rp))
	}
}

func TestAccountedStoreFaultsBeyondEPC(t *testing.T) {
	// A store bigger than the EPC must incur EPC faults on access, the
	// kvstore analogue of the paper's Figure 3 regime change.
	p := enclave.NewPlatform(enclave.Config{
		EPCBytes:         64 * 4096,
		EPCReservedBytes: 16 * 4096,
		LLCBytes:         16 << 10,
		LLCWays:          4,
		LineSize:         64,
		PageSize:         4096,
	})
	var signer cryptbox.Digest
	enc, err := p.ECreate(4<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("kv")); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}
	arena, _ := enc.HeapArena()
	var k cryptbox.Key
	s, err := NewAccounted(k, 1, Accounting{Mem: enc.Memory(), Arena: arena})
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 2048)
	for i := 0; i < 700; i++ { // ~1.4 MB of records >> 48-page EPC
		if err := s.Put(fmt.Sprintf("key-%04d", i), big); err != nil {
			t.Fatal(err)
		}
	}
	enc.Memory().ResetAccounting()
	for i := 0; i < 700; i += 7 {
		if _, err := s.Get(fmt.Sprintf("key-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Memory().Faults() == 0 {
		t.Fatal("no EPC faults despite store exceeding the EPC")
	}
}
