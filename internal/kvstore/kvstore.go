// Package kvstore implements SecureCloud's "secure structured data store"
// (paper §III-B(3)): an ordered key/value store whose records are sealed
// before they reach untrusted storage, with authenticated snapshots and
// rollback protection via a monotonic store version.
//
// The in-memory structure is a deterministic skip list (seeded, so tests
// replay), giving O(log n) point access and ordered range scans. All
// values are encrypted and authenticated; keys are kept in plaintext
// in memory (inside the enclave) but never leave it unsealed — snapshots
// seal the whole ordered state as one authenticated blob.
package kvstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"securecloud/internal/cryptbox"
	"securecloud/internal/sim"
)

const maxLevel = 16

// Errors returned by the store.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrTampered = errors.New("kvstore: snapshot failed authentication")
	ErrRollback = errors.New("kvstore: snapshot older than expected version")
)

type node struct {
	key   string
	value []byte // sealed
	next  []*node
}

// Store is an ordered, encrypted key/value store. Not safe for concurrent
// use; the owning micro-service serialises access (as the single-threaded
// enclave request loop does).
type Store struct {
	key     cryptbox.Key
	box     *cryptbox.Box
	head    *node
	level   int
	length  int
	rng     *rand.Rand
	version uint64
}

// New builds a store sealing with key. The seed fixes skip-list geometry.
func New(key cryptbox.Key, seed int64) (*Store, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return &Store{
		key:   key,
		box:   box,
		head:  &node{next: make([]*node, maxLevel)},
		level: 1,
		rng:   sim.NewRand(seed),
	}, nil
}

// Len returns the number of stored records.
func (s *Store) Len() int { return s.length }

// Version returns the store's monotonic mutation counter.
func (s *Store) Version() uint64 { return s.version }

func (s *Store) randomLevel() int {
	l := 1
	for l < maxLevel && s.rng.Intn(2) == 0 {
		l++
	}
	return l
}

// findPredecessors fills update[i] with the rightmost node at level i whose
// key precedes k.
func (s *Store) findPredecessors(k string, update []*node) *node {
	cur := s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < k {
			cur = cur.next[i]
		}
		update[i] = cur
	}
	return cur.next[0]
}

// valueAAD binds a sealed value to its key, preventing the storage layer
// from swapping values between keys.
func valueAAD(k string) []byte { return []byte("kv|" + k) }

// Put stores value under key, replacing any existing record.
func (s *Store) Put(key string, value []byte) error {
	sealed, err := s.box.Seal(value, valueAAD(key))
	if err != nil {
		return err
	}
	update := make([]*node, maxLevel)
	cand := s.findPredecessors(key, update)
	s.version++
	if cand != nil && cand.key == key {
		cand.value = sealed
		return nil
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &node{key: key, value: sealed, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.length++
	return nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	update := make([]*node, maxLevel)
	cand := s.findPredecessors(key, update)
	if cand == nil || cand.key != key {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	plain, err := s.box.Open(cand.value, valueAAD(key))
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", ErrTampered)
	}
	return plain, nil
}

// Delete removes key; it reports whether the key existed.
func (s *Store) Delete(key string) bool {
	update := make([]*node, maxLevel)
	cand := s.findPredecessors(key, update)
	if cand == nil || cand.key != key {
		return false
	}
	for i := 0; i < s.level; i++ {
		if update[i].next[i] == cand {
			update[i].next[i] = cand.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.length--
	s.version++
	return true
}

// Pair is one decrypted record.
type Pair struct {
	Key   string
	Value []byte
}

// Range returns all records with lo <= key < hi in key order. An empty hi
// means "to the end".
func (s *Store) Range(lo, hi string) ([]Pair, error) {
	var out []Pair
	cur := s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < lo {
			cur = cur.next[i]
		}
	}
	for n := cur.next[0]; n != nil; n = n.next[0] {
		if hi != "" && n.key >= hi {
			break
		}
		plain, err := s.box.Open(n.value, valueAAD(n.key))
		if err != nil {
			return nil, fmt.Errorf("kvstore: key %q: %w", n.key, ErrTampered)
		}
		out = append(out, Pair{Key: n.key, Value: plain})
	}
	return out, nil
}

// Keys returns all keys in order (no decryption needed).
func (s *Store) Keys() []string {
	var out []string
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.key)
	}
	return out
}

// snapshot is the serialised store state.
type snapshot struct {
	Version uint64   `json:"version"`
	Keys    []string `json:"keys"`
	Values  [][]byte `json:"values"` // plaintext inside the sealed blob
}

// Snapshot seals the full store state (for persistence to untrusted disk
// or hand-over to a successor enclave). The blob is authenticated and
// carries the store version for rollback checks on load.
func (s *Store) Snapshot() ([]byte, error) {
	snap := snapshot{Version: s.version}
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		plain, err := s.box.Open(n.value, valueAAD(n.key))
		if err != nil {
			return nil, fmt.Errorf("kvstore: key %q: %w", n.key, ErrTampered)
		}
		snap.Keys = append(snap.Keys, n.key)
		snap.Values = append(snap.Values, plain)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return s.box.Seal(raw, []byte("kv-snapshot"))
}

// Load restores a snapshot into a fresh store. minVersion is the lowest
// acceptable snapshot version (e.g. remembered via the CAS or a monotonic
// counter service); an older snapshot is a rollback attack and is
// rejected.
func Load(key cryptbox.Key, seed int64, blob []byte, minVersion uint64) (*Store, error) {
	s, err := New(key, seed)
	if err != nil {
		return nil, err
	}
	raw, err := s.box.Open(blob, []byte("kv-snapshot"))
	if err != nil {
		return nil, ErrTampered
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("kvstore: decoding snapshot: %w", err)
	}
	if snap.Version < minVersion {
		return nil, fmt.Errorf("%w: snapshot v%d < expected v%d", ErrRollback, snap.Version, minVersion)
	}
	for i, k := range snap.Keys {
		if err := s.Put(k, snap.Values[i]); err != nil {
			return nil, err
		}
	}
	s.version = snap.Version
	return s, nil
}

// Equal reports whether two stores hold identical records (test helper;
// decrypts both sides).
func Equal(a, b *Store) (bool, error) {
	pa, err := a.Range("", "")
	if err != nil {
		return false, err
	}
	pb, err := b.Range("", "")
	if err != nil {
		return false, err
	}
	if len(pa) != len(pb) {
		return false, nil
	}
	for i := range pa {
		if pa[i].Key != pb[i].Key || !bytes.Equal(pa[i].Value, pb[i].Value) {
			return false, nil
		}
	}
	return true, nil
}
