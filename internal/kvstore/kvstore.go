// Package kvstore implements SecureCloud's "secure structured data store"
// (paper §III-B(3)): an ordered key/value store whose records are sealed
// before they reach untrusted storage, with authenticated snapshots and
// rollback protection via a monotonic store version.
//
// The in-memory structure is a deterministic skip list (seeded, so tests
// replay), giving O(log n) point access and ordered range scans. All
// values are encrypted and authenticated; keys are kept in plaintext
// in memory (inside the enclave) but never leave it unsealed — snapshots
// seal the whole ordered state as one authenticated blob.
package kvstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

const maxLevel = 16

// Errors returned by the store.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrTampered = errors.New("kvstore: snapshot failed authentication")
	ErrRollback = errors.New("kvstore: snapshot older than expected version")
)

type node struct {
	key   string
	value []byte // sealed
	next  []*node
	addr  uint64 // simulated address when accounting is enabled
	bytes int    // simulated footprint (header + key + sealed value + links)
}

// nodeProbeBytes is the simulated cost of inspecting one skip-list node
// during a descent: the header, link pointers and key prefix a comparison
// reads before deciding to advance or drop a level.
const nodeProbeBytes = 64

// Accounting wires a Store to the simulated SGX memory hierarchy. With a
// zero Accounting the store runs as a plain data structure. With Mem and
// Arena set, every node lives at a simulated address and each operation
// charges its traversal through the bulk access API: one batched commit
// per descent instead of one lock round-trip per visited node.
type Accounting = enclave.Accounting

// Store is an ordered, encrypted key/value store. Not safe for concurrent
// use; the owning micro-service serialises access (as the single-threaded
// enclave request loop does).
type Store struct {
	key     cryptbox.Key
	box     *cryptbox.Box
	head    *node
	level   int
	length  int
	rng     *rand.Rand
	version uint64

	acct  Accounting
	probe []uint64 // scratch: node addresses visited by one descent
}

// Options configures a Store. It replaces the New/NewAccounted
// constructor pair with a single config-struct shape: the zero Options
// (seed 0, no accounting) behaves exactly like New(key, 0).
type Options struct {
	// Seed fixes the skip-list geometry (topology: same seed, same
	// structure, same simulated charges).
	Seed int64
	// Accounting optionally charges traversals and record I/O to a
	// simulated memory view.
	Accounting Accounting
}

// NewStore builds a store sealing with key, shaped by opts.
func NewStore(key cryptbox.Key, opts Options) (*Store, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	s := &Store{
		key:   key,
		box:   box,
		head:  &node{next: make([]*node, maxLevel)},
		level: 1,
		rng:   sim.NewRand(opts.Seed),
		acct:  opts.Accounting,
	}
	if s.accounted() {
		s.head.bytes = nodeProbeBytes + 8*maxLevel
		s.head.addr = opts.Accounting.Arena.Alloc(s.head.bytes)
	}
	return s, nil
}

// New builds a store sealing with key. The seed fixes skip-list geometry.
//
// Deprecated: use NewStore.
func New(key cryptbox.Key, seed int64) (*Store, error) {
	return NewStore(key, Options{Seed: seed})
}

// NewAccounted builds a store whose skip-list traversals and record I/O
// are charged to the given simulated memory view.
//
// Deprecated: use NewStore with Options.Accounting.
func NewAccounted(key cryptbox.Key, seed int64, acct Accounting) (*Store, error) {
	return NewStore(key, Options{Seed: seed, Accounting: acct})
}

func (s *Store) accounted() bool { return s.acct.Enabled() }

// noteProbe records one node inspection for the current descent's batch.
func (s *Store) noteProbe(n *node) {
	if s.accounted() {
		s.probe = append(s.probe, n.addr)
	}
}

// commitProbes charges all node inspections accumulated by one descent as
// a single bulk access.
func (s *Store) commitProbes() {
	if s.accounted() && len(s.probe) > 0 {
		s.acct.Mem.AccessN(s.probe, nodeProbeBytes, false)
	}
	s.probe = s.probe[:0]
}

// nodeFootprint is the simulated size of a node's storage.
func nodeFootprint(n *node) int {
	return nodeProbeBytes + len(n.key) + len(n.value) + 8*len(n.next)
}

// placeNode assigns a simulated address covering the node's full footprint.
func (s *Store) placeNode(n *node) {
	if !s.accounted() {
		return
	}
	n.bytes = nodeFootprint(n)
	n.addr = s.acct.Arena.Alloc(n.bytes)
	s.acct.Mem.AccessRange(n.addr, n.bytes, true)
}

// replaceNodeValue re-places a node whose value changed size: the record is
// rewritten where it stands when it still fits, or relocated when it grew,
// so later reads charge the real footprint.
func (s *Store) replaceNodeValue(n *node) {
	if !s.accounted() {
		return
	}
	size := nodeFootprint(n)
	if size > n.bytes {
		n.addr = s.acct.Arena.Alloc(size)
	}
	n.bytes = size
	s.acct.Mem.AccessRange(n.addr, n.bytes, true)
}

// Len returns the number of stored records.
func (s *Store) Len() int { return s.length }

// Version returns the store's monotonic mutation counter.
func (s *Store) Version() uint64 { return s.version }

func (s *Store) randomLevel() int {
	l := 1
	for l < maxLevel && s.rng.Intn(2) == 0 {
		l++
	}
	return l
}

// findPredecessors fills update[i] with the rightmost node at level i whose
// key precedes k. Every node inspected by a comparison is noted in the
// probe batch; callers charge the whole descent with commitProbes.
func (s *Store) findPredecessors(k string, update []*node) *node {
	cur := s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < k {
			s.noteProbe(cur.next[i])
			cur = cur.next[i]
		}
		if cur.next[i] != nil {
			s.noteProbe(cur.next[i]) // the comparison that stopped the level
		}
		update[i] = cur
	}
	return cur.next[0]
}

// valueAAD binds a sealed value to its key, preventing the storage layer
// from swapping values between keys.
func valueAAD(k string) []byte { return []byte("kv|" + k) }

// Put stores value under key, replacing any existing record.
func (s *Store) Put(key string, value []byte) error {
	sealed, err := s.box.Seal(value, valueAAD(key))
	if err != nil {
		return err
	}
	update := make([]*node, maxLevel)
	cand := s.findPredecessors(key, update)
	s.commitProbes()
	s.version++
	if cand != nil && cand.key == key {
		cand.value = sealed
		s.replaceNodeValue(cand)
		return nil
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &node{key: key, value: sealed, next: make([]*node, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.placeNode(n)
	s.chargeLinkWrites(update[:lvl])
	s.length++
	return nil
}

// chargeLinkWrites charges the pointer stores that splice a node in or out:
// one 8-byte write per touched predecessor, committed as a single batch.
func (s *Store) chargeLinkWrites(preds []*node) {
	if !s.accounted() || len(preds) == 0 {
		return
	}
	s.probe = s.probe[:0]
	for _, p := range preds {
		s.probe = append(s.probe, p.addr)
	}
	s.acct.Mem.AccessN(s.probe, 8, true)
	s.probe = s.probe[:0]
}

// descendSnapshot walks to key without touching any store state, collecting
// the simulated addresses a descent would probe into buf (the same node
// sequence findPredecessors notes). It is the read path safe for concurrent
// callers: no scratch slice, no accounting mutation.
func (s *Store) descendSnapshot(key string, buf []uint64) (*node, []uint64) {
	acct := s.accounted()
	cur := s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < key {
			if acct {
				buf = append(buf, cur.next[i].addr)
			}
			cur = cur.next[i]
		}
		if cur.next[i] != nil && acct {
			buf = append(buf, cur.next[i].addr) // the comparison that stopped the level
		}
	}
	return cur.next[0], buf
}

// GetSnapshot is Get charged through a read-only snapshot accounting span:
// the descent's probes consult — but never mutate — the platform's cache
// and residency state, so concurrent GetSnapshot calls on one store charge
// the same totals under any interleaving. Callers must guarantee no
// mutating operation (Put, Delete, Range, plain Get) runs concurrently,
// e.g. by holding the read side of a lock whose write side covers all
// mutators — exactly what ShardedStore does per shard.
func (s *Store) GetSnapshot(key string) ([]byte, error) {
	var probeBuf [2 * maxLevel]uint64
	cand, probes := s.descendSnapshot(key, probeBuf[:0])
	if s.accounted() {
		sp := s.acct.Mem.BeginSnapshotSpan()
		for _, a := range probes {
			sp.Access(a, nodeProbeBytes, false)
		}
		if cand != nil && cand.key == key {
			sp.Access(cand.addr, cand.bytes, false)
		}
		sp.End()
	}
	if cand == nil || cand.key != key {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	plain, err := s.box.Open(cand.value, valueAAD(key))
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", ErrTampered)
	}
	return plain, nil
}

// PutBatch stores every pair in slice order (later duplicates win), the
// sequential reference for ShardedStore.PutBatch.
func (s *Store) PutBatch(pairs []Pair) error {
	for _, p := range pairs {
		if err := s.Put(p.Key, p.Value); err != nil {
			return err
		}
	}
	return nil
}

// GetBatch returns the values of keys, aligned by index. Missing keys
// yield nil entries rather than an error, so a batch over a partially
// populated key set is a total function; tampered records still fail.
func (s *Store) GetBatch(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue
			}
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	update := make([]*node, maxLevel)
	cand := s.findPredecessors(key, update)
	s.commitProbes()
	if cand == nil || cand.key != key {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if s.accounted() {
		s.acct.Mem.AccessRange(cand.addr, cand.bytes, false)
	}
	plain, err := s.box.Open(cand.value, valueAAD(key))
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", ErrTampered)
	}
	return plain, nil
}

// Delete removes key; it reports whether the key existed.
func (s *Store) Delete(key string) bool {
	update := make([]*node, maxLevel)
	cand := s.findPredecessors(key, update)
	s.commitProbes()
	if cand == nil || cand.key != key {
		return false
	}
	var relinked []*node
	for i := 0; i < s.level; i++ {
		if update[i].next[i] == cand {
			update[i].next[i] = cand.next[i]
			relinked = append(relinked, update[i])
		}
	}
	s.chargeLinkWrites(relinked)
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.length--
	s.version++
	return true
}

// Pair is one decrypted record.
type Pair struct {
	Key   string
	Value []byte
}

// Range returns all records with lo <= key < hi in key order. An empty hi
// means "to the end". The descent and the level-0 scan are charged as one
// bulk access each; record payload reads are charged per record.
func (s *Store) Range(lo, hi string) ([]Pair, error) {
	var out []Pair
	cur := s.head
	for i := s.level - 1; i >= 0; i-- {
		for cur.next[i] != nil && cur.next[i].key < lo {
			s.noteProbe(cur.next[i])
			cur = cur.next[i]
		}
		if cur.next[i] != nil {
			s.noteProbe(cur.next[i]) // the comparison that stopped the level
		}
	}
	s.commitProbes()
	for n := cur.next[0]; n != nil; n = n.next[0] {
		if hi != "" && n.key >= hi {
			break
		}
		if s.accounted() {
			s.acct.Mem.AccessRange(n.addr, n.bytes, false)
		}
		plain, err := s.box.Open(n.value, valueAAD(n.key))
		if err != nil {
			return nil, fmt.Errorf("kvstore: key %q: %w", n.key, ErrTampered)
		}
		out = append(out, Pair{Key: n.key, Value: plain})
	}
	return out, nil
}

// Keys returns all keys in order (no decryption needed).
func (s *Store) Keys() []string {
	var out []string
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.key)
	}
	return out
}

// snapshot is the serialised store state.
type snapshot struct {
	Version uint64   `json:"version"`
	Keys    []string `json:"keys"`
	Values  [][]byte `json:"values"` // plaintext inside the sealed blob
}

// Snapshot seals the full store state (for persistence to untrusted disk
// or hand-over to a successor enclave). The blob is authenticated and
// carries the store version for rollback checks on load.
func (s *Store) Snapshot() ([]byte, error) {
	snap := snapshot{Version: s.version}
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		plain, err := s.box.Open(n.value, valueAAD(n.key))
		if err != nil {
			return nil, fmt.Errorf("kvstore: key %q: %w", n.key, ErrTampered)
		}
		snap.Keys = append(snap.Keys, n.key)
		snap.Values = append(snap.Values, plain)
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	return s.box.Seal(raw, []byte("kv-snapshot"))
}

// Load restores a snapshot into a fresh store. minVersion is the lowest
// acceptable snapshot version (e.g. remembered via the CAS or a monotonic
// counter service); an older snapshot is a rollback attack and is
// rejected.
func Load(key cryptbox.Key, seed int64, blob []byte, minVersion uint64) (*Store, error) {
	s, err := New(key, seed)
	if err != nil {
		return nil, err
	}
	raw, err := s.box.Open(blob, []byte("kv-snapshot"))
	if err != nil {
		return nil, ErrTampered
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("kvstore: decoding snapshot: %w", err)
	}
	if snap.Version < minVersion {
		return nil, fmt.Errorf("%w: snapshot v%d < expected v%d", ErrRollback, snap.Version, minVersion)
	}
	for i, k := range snap.Keys {
		if err := s.Put(k, snap.Values[i]); err != nil {
			return nil, err
		}
	}
	s.version = snap.Version
	return s, nil
}

// Equal reports whether two stores hold identical records (test helper;
// decrypts both sides).
func Equal(a, b *Store) (bool, error) {
	pa, err := a.Range("", "")
	if err != nil {
		return false, err
	}
	pb, err := b.Range("", "")
	if err != nil {
		return false, err
	}
	if len(pa) != len(pb) {
		return false, nil
	}
	for i := range pa {
		if pa[i].Key != pb[i].Key || !bytes.Equal(pa[i].Value, pb[i].Value) {
			return false, nil
		}
	}
	return true, nil
}
