// The per-shard sealed write-ahead log. A WAL is the durable half of a
// shard: PutBatch appends one group-commit record per tick, and the byte
// buffer — not the in-memory table — is what survives a crash. The format
// composes the repo's existing sealing layers instead of inventing one:
//
//	frame   = u32 len | body | mac[32]
//	body    = u32 wrappedLen | wrapped convergent key | u32 sealedLen | sealed ops
//	sealed  = transfer.SealConvergent(encodeWALOps(batch))
//	wrapped = convergent key sealed under the shard WAL key (deterministic nonce)
//	mac     = fsshield.MACChunk(walKey, body, fsshield.ChunkAAD(name, epoch, seq, 0))
//
// The payload is convergently sealed (pooled deflate + content-derived key),
// so identical batches produce bit-identical sealed segments and dedup
// wherever log segments are stored content-addressed. Position binding comes
// from the fsshield chunk AAD: a record authenticated at (log, epoch, seq)
// cannot be replayed at any other position, the same cut-and-paste defence
// the protected FS gives file chunks. Total = 0 in the AAD marks the extent
// open-ended — a log grows, unlike a file of known chunk count.
//
// Torn-tail discipline (the crash contract): a record that is incomplete —
// truncated framing, or a full final frame whose MAC fails — is a clean
// crash point; recovery truncates it and continues. The same damage
// anywhere before the final record cannot be explained by a crash during a
// sequential append and is a hard integrity error.
package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/fsshield"
	"securecloud/internal/transfer"
)

// WAL errors.
var (
	// ErrWALTorn marks a truncated or MAC-failing final record — the clean
	// crash point. Recovery truncates at the last good record and continues.
	ErrWALTorn = errors.New("kvstore: wal torn tail")
	// ErrWALCorrupt marks damage that a crash cannot explain: a bad record
	// with valid records after it, or an authenticated record whose payload
	// does not decode. Recovery must fail loudly.
	ErrWALCorrupt = errors.New("kvstore: wal corrupt")
)

// WALOp is one logged mutation.
type WALOp struct {
	Key    string
	Value  []byte
	Delete bool
}

// walMaxOps bounds a single record's declared op count against its byte
// length before any allocation — the forged-count guard, mirroring
// transfer.Manifest.Validate.
const walOpMinBytes = 3 // flags + u16 key length, for an empty-key delete

// encodeWALOps serializes a batch deterministically:
//
//	u32 count, then per op: u8 flags (bit0 = delete), u16 klen, key,
//	and for puts u32 vlen, value.
func encodeWALOps(ops []WALOp) ([]byte, error) {
	buf := make([]byte, 4, 4+len(ops)*16)
	binary.BigEndian.PutUint32(buf, uint32(len(ops)))
	for _, op := range ops {
		if len(op.Key) > 0xFFFF {
			return nil, fmt.Errorf("kvstore: wal key %d bytes exceeds 64KiB", len(op.Key))
		}
		var flags byte
		if op.Delete {
			flags = 1
		}
		buf = append(buf, flags)
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(op.Key)))
		buf = append(buf, op.Key...)
		if !op.Delete {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(op.Value)))
			buf = append(buf, op.Value...)
		}
	}
	return buf, nil
}

// decodeWALOps reverses encodeWALOps with incremental bounds checks; every
// length is validated against the remaining bytes before use, and the
// declared count against the minimum op size before allocating.
func decodeWALOps(buf []byte) ([]WALOp, error) {
	if len(buf) < 4 {
		return nil, errors.New("kvstore: wal ops truncated before count")
	}
	count := int(binary.BigEndian.Uint32(buf))
	rest := buf[4:]
	if count > len(rest)/walOpMinBytes {
		return nil, fmt.Errorf("kvstore: wal ops count %d exceeds %d bytes", count, len(rest))
	}
	ops := make([]WALOp, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < walOpMinBytes {
			return nil, fmt.Errorf("kvstore: wal op %d truncated", i)
		}
		flags := rest[0]
		if flags > 1 {
			return nil, fmt.Errorf("kvstore: wal op %d has unknown flags %#x", i, flags)
		}
		klen := int(binary.BigEndian.Uint16(rest[1:3]))
		rest = rest[3:]
		if len(rest) < klen {
			return nil, fmt.Errorf("kvstore: wal op %d key overruns record", i)
		}
		op := WALOp{Key: string(rest[:klen]), Delete: flags == 1}
		rest = rest[klen:]
		if !op.Delete {
			if len(rest) < 4 {
				return nil, fmt.Errorf("kvstore: wal op %d truncated before value length", i)
			}
			vlen := int(binary.BigEndian.Uint32(rest))
			rest = rest[4:]
			if vlen > len(rest) {
				return nil, fmt.Errorf("kvstore: wal op %d value overruns record", i)
			}
			op.Value = append([]byte(nil), rest[:vlen]...)
			rest = rest[vlen:]
		}
		ops = append(ops, op)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("kvstore: wal ops carry %d trailing bytes", len(rest))
	}
	return ops, nil
}

// walWrapNonceLabel domain-separates the deterministic wrap nonce.
const walWrapNonceLabel = "kv-wal-wrap-nonce"

// sealDeterministic seals plaintext under key with a nonce derived from the
// plaintext and AAD instead of a random one, so identical appends produce
// bit-identical log bytes (the twin-determinism the recovery gate pins).
// The (key, nonce) pair can only recur for an identical (plaintext, aad)
// pair — which produces the identical sealed record — so determinism costs
// no nonce-reuse safety, the same argument transfer makes for convergent
// chunks.
func sealDeterministic(key cryptbox.Key, plaintext, aad []byte) ([]byte, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	seed := make([]byte, 0, len(plaintext)+len(aad)+len(walWrapNonceLabel))
	seed = append(seed, plaintext...)
	seed = append(seed, aad...)
	seed = append(seed, walWrapNonceLabel...)
	sum := cryptbox.Sum(seed)
	box.SetNonceSource(bytes.NewReader(sum[:cryptbox.NonceSize]))
	return box.Seal(plaintext, aad)
}

// WALSegment is one sealed epoch of a shard's log: the byte extent a Roll
// closed (or the live tail, for the current epoch). Segments are the unit
// of retention — a snapshot makes the epochs it covers collectible, and GC
// retires whole segments, never record prefixes.
type WALSegment struct {
	Epoch   uint64
	Bytes   []byte
	Records int
}

// WAL is one shard's sealed write-ahead log. Its buffers model the durable
// medium: everything in them survives the process; nothing else does.
// Epochs tie the log to snapshots — publishing a snapshot rolls the WAL
// into the next epoch, sealing the previous one as a segment that stays on
// the durable medium until GC retires it. Recovery replays only the epochs
// at or after the snapshot's; GC may only retire epochs strictly before it.
type WAL struct {
	mu      sync.Mutex
	name    string
	key     cryptbox.Key
	epoch   uint64
	seq     uint64
	buf     []byte
	records int
	// segs holds the sealed (rolled, not yet GC'd) earlier epochs in
	// ascending epoch order; buf/records above are the live tail epoch.
	segs []WALSegment
}

// NewWAL opens an empty log for one shard.
func NewWAL(key cryptbox.Key, name string, epoch uint64) *WAL {
	return &WAL{name: name, key: key, epoch: epoch}
}

// Name returns the log's position-binding name.
func (w *WAL) Name() string { return w.name }

// Epoch returns the current (live tail) epoch.
func (w *WAL) Epoch() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Records returns how many records the live tail epoch holds.
func (w *WAL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Bytes returns a copy of the live tail epoch's log bytes.
func (w *WAL) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf...)
}

// Reset discards the whole log — sealed segments included — and starts the
// given epoch with nothing durable behind it. Snapshots use Roll instead;
// Reset is for abandoning a log.
func (w *WAL) Reset(epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.epoch = epoch
	w.seq = 0
	w.records = 0
	w.buf = nil
	w.segs = nil
}

// Roll seals the live tail as a segment (kept on the durable medium until
// GC) and starts the given epoch — the snapshot step. Empty tails seal
// too, preserving epoch contiguity on the medium.
func (w *WAL) Roll(epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.segs = append(w.segs, WALSegment{Epoch: w.epoch, Bytes: w.buf, Records: w.records})
	w.epoch = epoch
	w.seq = 0
	w.records = 0
	w.buf = nil
}

// Segments returns a copy of everything on the durable medium: the sealed
// earlier epochs in ascending order, then the live tail epoch — what a
// crashed process leaves behind for RecoverDurableStore.
func (w *WAL) Segments() []WALSegment {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]WALSegment, 0, len(w.segs)+1)
	for _, s := range w.segs {
		out = append(out, WALSegment{Epoch: s.Epoch, Bytes: append([]byte(nil), s.Bytes...), Records: s.Records})
	}
	out = append(out, WALSegment{Epoch: w.epoch, Bytes: append([]byte(nil), w.buf...), Records: w.records})
	return out
}

// GC retires sealed segments with epoch strictly below floor, keeping the
// newest retain sealed epochs as a retention margin. The live tail is
// never touched, so with floor capped at the newest durable snapshot's
// epoch the crash window never widens. Returns segments and bytes retired.
func (w *WAL) GC(floor uint64, retain int) (retired int, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if retain < 0 {
		retain = 0
	}
	keep := w.segs[:0]
	for idx, s := range w.segs {
		// Segments newer than (len - retain) stay as the retention margin;
		// everything else below floor goes.
		inMargin := idx >= len(w.segs)-retain
		if s.Epoch < floor && !inMargin {
			retired++
			bytes += int64(len(s.Bytes))
			continue
		}
		keep = append(keep, s)
	}
	w.segs = keep
	return retired, bytes
}

// Append group-commits one batch as a single sealed record.
func (w *WAL) Append(ops []WALOp) error {
	if len(ops) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	payload, err := encodeWALOps(ops)
	if err != nil {
		return err
	}
	convKey, sealed, err := transfer.SealConvergent(payload)
	if err != nil {
		return err
	}
	aad := fsshield.ChunkAAD(w.name, w.epoch, int(w.seq), 0)
	wrapped, err := sealDeterministic(w.key, convKey[:], aad)
	if err != nil {
		return err
	}
	body := make([]byte, 0, 8+len(wrapped)+len(sealed))
	body = binary.BigEndian.AppendUint32(body, uint32(len(wrapped)))
	body = append(body, wrapped...)
	body = binary.BigEndian.AppendUint32(body, uint32(len(sealed)))
	body = append(body, sealed...)
	tag := fsshield.MACChunk(w.key, body, aad)
	w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(len(body)+cryptbox.MACSize))
	w.buf = append(w.buf, body...)
	w.buf = append(w.buf, tag[:]...)
	w.seq++
	w.records++
	return nil
}

// DecodeWALRecord authenticates and decodes the record expected at
// (name, epoch, seq) from the front of buf, returning the batch and how
// many bytes the frame consumed. buf must run to the end of the log:
// whether a bad record is the final one — a crash point (ErrWALTorn) — or
// has records after it — corruption (ErrWALCorrupt) — is decided by
// whether its frame reaches exactly len(buf).
func DecodeWALRecord(key cryptbox.Key, name string, epoch, seq uint64, buf []byte) ([]WALOp, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("%w: %d bytes of trailing framing", ErrWALTorn, len(buf))
	}
	rl := int(binary.BigEndian.Uint32(buf))
	end := 4 + rl
	if end > len(buf) {
		// Declared extent overruns the log: the append died mid-write (or
		// the length field itself is damaged — indistinguishable, and
		// everything after it is unwalkable either way).
		return nil, 0, fmt.Errorf("%w: record %d declares %d bytes, %d remain", ErrWALTorn, seq, rl, len(buf)-4)
	}
	tornOrCorrupt := func(format string, args ...any) error {
		kind := ErrWALCorrupt
		if end == len(buf) {
			kind = ErrWALTorn
		}
		return fmt.Errorf("%w: record %d: %s", kind, seq, fmt.Sprintf(format, args...))
	}
	if rl < cryptbox.MACSize+8 {
		return nil, 0, tornOrCorrupt("%d bytes below frame minimum", rl)
	}
	body := buf[4 : end-cryptbox.MACSize]
	var tag [cryptbox.MACSize]byte
	copy(tag[:], buf[end-cryptbox.MACSize:end])
	aad := fsshield.ChunkAAD(name, epoch, int(seq), 0)
	if !fsshield.VerifyChunkMAC(key, body, aad, tag) {
		return nil, 0, tornOrCorrupt("MAC verification failed")
	}
	// The MAC covers body and position: from here every failure means the
	// authenticated bytes themselves are wrong — forged under the key or a
	// writer bug — which no crash explains. Hard error regardless of
	// position.
	wl := int(binary.BigEndian.Uint32(body))
	if 4+wl > len(body)-4 {
		return nil, 0, fmt.Errorf("%w: record %d wrapped key overruns body", ErrWALCorrupt, seq)
	}
	wrapped := body[4 : 4+wl]
	rest := body[4+wl:]
	sl := int(binary.BigEndian.Uint32(rest))
	if 4+sl != len(rest) {
		return nil, 0, fmt.Errorf("%w: record %d sealed payload length mismatch", ErrWALCorrupt, seq)
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, 0, err
	}
	rawKey, err := box.Open(wrapped, aad)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: record %d key unwrap failed", ErrWALCorrupt, seq)
	}
	convKey, err := cryptbox.KeyFromBytes(rawKey)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: record %d: %v", ErrWALCorrupt, seq, err)
	}
	payload, err := transfer.OpenConvergent(convKey, rest[4:], 0)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: record %d payload: %v", ErrWALCorrupt, seq, err)
	}
	ops, err := decodeWALOps(payload)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: record %d: %v", ErrWALCorrupt, seq, err)
	}
	return ops, end, nil
}

// DecodeWAL walks a whole log, applying the torn-tail discipline: a torn
// final record is silently truncated (prefix reports the clean length),
// while mid-log corruption returns the batches before the damage alongside
// ErrWALCorrupt.
func DecodeWAL(key cryptbox.Key, name string, epoch uint64, buf []byte) (batches [][]WALOp, prefix int, err error) {
	off := 0
	for seq := uint64(0); off < len(buf); seq++ {
		ops, n, err := DecodeWALRecord(key, name, epoch, seq, buf[off:])
		if errors.Is(err, ErrWALTorn) {
			return batches, off, nil
		}
		if err != nil {
			return batches, off, err
		}
		batches = append(batches, ops)
		off += n
	}
	return batches, off, nil
}

// RecoverWAL rebuilds a usable log handle from crash-surviving bytes: the
// decoded batches for replay, plus a WAL truncated at the last clean record
// and positioned to append the next one.
func RecoverWAL(key cryptbox.Key, name string, epoch uint64, buf []byte) (*WAL, [][]WALOp, error) {
	batches, prefix, err := DecodeWAL(key, name, epoch, buf)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{
		name:    name,
		key:     key,
		epoch:   epoch,
		seq:     uint64(len(batches)),
		buf:     append([]byte(nil), buf[:prefix]...),
		records: len(batches),
	}
	return w, batches, nil
}

// attachSegments installs sealed earlier-epoch segments on a freshly
// recovered WAL so a post-recovery GC can still retire them
// (construction-time plumbing for RecoverDurableStore).
func (w *WAL) attachSegments(segs []WALSegment) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.segs = segs
}
