package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

// smallShardPlatform is the shrunken per-shard platform used by the
// sharded-store tests: tiny EPC and LLC so even modest stores exercise
// faults and evictions.
func smallShardPlatform() enclave.Config {
	return enclave.Config{
		EPCBytes:         96 * 4096,
		EPCReservedBytes: 16 * 4096,
		LLCBytes:         16 << 10,
		LLCWays:          4,
		LineSize:         64,
		PageSize:         4096,
	}
}

func shardedStore(t testing.TB, shards, workers int, accounted bool) *ShardedStore {
	t.Helper()
	var k cryptbox.Key
	k[0] = 7
	cfg := ShardedStoreConfig{Shards: shards, Workers: workers, Seed: 11}
	if accounted {
		cfg.Accounted = true
		cfg.Platform = smallShardPlatform()
		cfg.ShardBytes = 8 << 20
	}
	ss, err := NewShardedStore(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

// workloadPairs builds a deterministic mixed-size workload.
func workloadPairs(n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		val := bytes.Repeat([]byte{byte(i)}, 16+(i*37)%240)
		pairs[i] = Pair{Key: fmt.Sprintf("meter-%05d", (i*211)%n), Value: val}
	}
	return pairs
}

// TestShardedStoreMatchesPlain pins ShardedStore ≡ Store: the same
// operation sequence against the sharded store (any shard count) and the
// sequential reference store leaves identical records.
func TestShardedStoreMatchesPlain(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var k cryptbox.Key
			k[0] = 7
			plain, err := New(k, 11)
			if err != nil {
				t.Fatal(err)
			}
			ss := shardedStore(t, shards, 4, true)

			pairs := workloadPairs(500)
			if err := ss.PutBatch(pairs); err != nil {
				t.Fatal(err)
			}
			if err := plain.PutBatch(pairs); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 100; i += 7 {
				key := fmt.Sprintf("meter-%05d", i)
				if ss.Delete(key) != plain.Delete(key) {
					t.Fatalf("Delete(%q) disagreed", key)
				}
			}
			if err := ss.Put("meter-00003", []byte("overwritten")); err != nil {
				t.Fatal(err)
			}
			if err := plain.Put("meter-00003", []byte("overwritten")); err != nil {
				t.Fatal(err)
			}

			eq, err := EqualSharded(ss, plain)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatal("sharded store diverged from plain store")
			}
			if ss.Len() != plain.Len() {
				t.Fatalf("Len: sharded %d plain %d", ss.Len(), plain.Len())
			}

			keys := ss.Keys()
			got, err := ss.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			want, err := plain.GetBatch(keys)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("GetBatch[%q]: sharded %q plain %q", keys[i], got[i], want[i])
				}
			}

			ra, err := ss.Range("meter-00010", "meter-00040")
			if err != nil {
				t.Fatal(err)
			}
			rp, err := plain.Range("meter-00010", "meter-00040")
			if err != nil {
				t.Fatal(err)
			}
			if len(ra) != len(rp) {
				t.Fatalf("Range: sharded %d records, plain %d", len(ra), len(rp))
			}
			for i := range ra {
				if ra[i].Key != rp[i].Key || !bytes.Equal(ra[i].Value, rp[i].Value) {
					t.Fatalf("Range[%d]: sharded %q plain %q", i, ra[i].Key, rp[i].Key)
				}
			}
		})
	}
}

// TestShardedStoreDeterministicCycles pins the concurrency contract: for a
// fixed shard count (topology), the simulated per-shard cycle and fault
// totals of a batch workload are bit-identical at every worker count
// (execution parallelism) — the kvstore analogue of the sharded SCBR
// matcher's interleaving-independence.
func TestShardedStoreDeterministicCycles(t *testing.T) {
	pairs := workloadPairs(400)
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = p.Key
	}
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			run := func(workers int) ([]sim.Cycles, uint64, [][]byte) {
				ss := shardedStore(t, shards, workers, true)
				if err := ss.PutBatch(pairs); err != nil {
					t.Fatal(err)
				}
				got, err := ss.GetBatch(keys)
				if err != nil {
					t.Fatal(err)
				}
				// A second read pass: snapshot reads must not have moved
				// any simulated state, so it charges exactly the same.
				if _, err := ss.GetBatch(keys); err != nil {
					t.Fatal(err)
				}
				return ss.ShardCycles(), ss.Faults(), got
			}
			baseCycles, baseFaults, baseVals := run(1)
			for _, workers := range []int{2, 8} {
				cycles, faults, vals := run(workers)
				for i := range cycles {
					if cycles[i] != baseCycles[i] {
						t.Fatalf("workers=%d shard %d cycles %d, want %d (workers=1)",
							workers, i, cycles[i], baseCycles[i])
					}
				}
				if faults != baseFaults {
					t.Fatalf("workers=%d faults %d, want %d", workers, faults, baseFaults)
				}
				for i := range vals {
					if !bytes.Equal(vals[i], baseVals[i]) {
						t.Fatalf("workers=%d value[%d] differs", workers, i)
					}
				}
			}
		})
	}
}

// TestSnapshotGetFreezesState pins the snapshot-read guarantee on the
// plain store: GetSnapshot charges cycles but leaves every subsequent
// operation's costs untouched, and repeated snapshot reads of the same key
// charge identical amounts.
func TestSnapshotGetFreezesState(t *testing.T) {
	s, mem := accountedStore(t)
	for i := 0; i < 300; i++ {
		if err := s.Put(fmt.Sprintf("k%04d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	mem.ResetAccounting()
	v1, err := s.GetSnapshot("k0123")
	if err != nil {
		t.Fatal(err)
	}
	c1 := mem.Cycles()
	if c1 == 0 {
		t.Fatal("snapshot read charged no cycles")
	}
	v2, err := s.GetSnapshot("k0123")
	if err != nil {
		t.Fatal(err)
	}
	c2 := mem.Cycles() - c1
	if c2 != c1 {
		t.Fatalf("repeated snapshot read charged %d cycles, first charged %d", c2, c1)
	}
	if !bytes.Equal(v1, v2) {
		t.Fatal("snapshot reads disagreed")
	}
	if _, err := s.GetSnapshot("missing"); err == nil {
		t.Fatal("snapshot read of missing key succeeded")
	}
}

// TestPutBatchEmpty covers the empty-batch edge: no-ops, no errors, no
// cycles charged.
func TestPutBatchEmpty(t *testing.T) {
	ss := shardedStore(t, 4, 2, true)
	ss.ResetAccounting()
	if err := ss.PutBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := ss.PutBatch([]Pair{}); err != nil {
		t.Fatal(err)
	}
	got, err := ss.GetBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty GetBatch returned %d entries", len(got))
	}
	if ss.Cycles() != 0 {
		t.Fatalf("empty batches charged %d cycles", ss.Cycles())
	}
	if ss.Len() != 0 {
		t.Fatal("empty batch changed the store")
	}
}

// TestPutBatchDuplicateKeys pins in-batch duplicate semantics: later
// entries win, exactly as sequential Puts would.
func TestPutBatchDuplicateKeys(t *testing.T) {
	ss := shardedStore(t, 4, 4, false)
	batch := []Pair{
		{Key: "dup", Value: []byte("first")},
		{Key: "other", Value: []byte("x")},
		{Key: "dup", Value: []byte("second")},
		{Key: "dup", Value: []byte("third")},
	}
	if err := ss.PutBatch(batch); err != nil {
		t.Fatal(err)
	}
	v, err := ss.Get("dup")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "third" {
		t.Fatalf("duplicate key resolved to %q, want %q", v, "third")
	}
	if ss.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ss.Len())
	}
	got, err := ss.GetBatch([]string{"dup", "missing", "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "third" || got[1] != nil || string(got[2]) != "third" {
		t.Fatalf("GetBatch with duplicates = %q", got)
	}
}

// TestGetBatchCrossShardOrdering pins cross-shard ordering determinism:
// results align with the request order however keys scatter across shards,
// and reversing the batch yields the reversed result.
func TestGetBatchCrossShardOrdering(t *testing.T) {
	ss := shardedStore(t, 8, 3, false)
	const n = 64
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := ss.Put(keys[i], []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ss.GetBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if string(got[i]) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("got[%d] = %q, want val-%03d", i, got[i], i)
		}
	}
	rev := make([]string, n)
	for i := range rev {
		rev[i] = keys[n-1-i]
	}
	gotRev, err := ss.GetBatch(rev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rev {
		if !bytes.Equal(gotRev[i], got[n-1-i]) {
			t.Fatalf("reversed batch misaligned at %d", i)
		}
	}
}

// TestShardedStoreConcurrentAccess hammers the store from many goroutines
// (meaningful under -race): concurrent snapshot reads overlapping with
// writers on disjoint key ranges.
func TestShardedStoreConcurrentAccess(t *testing.T) {
	ss := shardedStore(t, 4, 4, true)
	const n = 200
	pairs := workloadPairs(n)
	if err := ss.PutBatch(pairs); err != nil {
		t.Fatal(err)
	}
	keys := ss.Keys()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := ss.Get(keys[(i*7+r)%len(keys)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("writer-%d-%04d", w, i)
				if err := ss.Put(key, []byte("w")); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := ss.Len(); got != n+200 {
		t.Fatalf("Len = %d, want %d", got, n+200)
	}
}

// TestShardedStoreTamperDetected: flipping sealed bytes inside one shard
// surfaces ErrTampered through batch reads.
func TestShardedStoreTamperDetected(t *testing.T) {
	ss := shardedStore(t, 2, 2, false)
	if err := ss.Put("victim", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	sh := ss.shards[ss.shardOf("victim")]
	for n := sh.st.head.next[0]; n != nil; n = n.next[0] {
		if n.key == "victim" {
			n.value[len(n.value)-1] ^= 1
		}
	}
	if _, err := ss.Get("victim"); err == nil {
		t.Fatal("tampered record decrypted")
	}
	if _, err := ss.GetBatch([]string{"victim"}); err == nil {
		t.Fatal("tampered record passed GetBatch")
	}
}
