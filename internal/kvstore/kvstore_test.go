package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"securecloud/internal/cryptbox"
)

func storeKey() cryptbox.Key {
	var k cryptbox.Key
	k[5] = 0x42
	return k
}

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(storeKey(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := newStore(t)
	if err := s.Put("meter/001", []byte("42.7")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("meter/001")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "42.7" {
		t.Fatalf("got %q", got)
	}
	if !s.Delete("meter/001") {
		t.Fatal("delete missed")
	}
	if s.Delete("meter/001") {
		t.Fatal("double delete reported true")
	}
	if _, err := s.Get("meter/001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := newStore(t)
	_ = s.Put("k", []byte("v1"))
	_ = s.Put("k", []byte("v2"))
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestOrderedIteration(t *testing.T) {
	s := newStore(t)
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		if err := s.Put(k, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Keys()
	want := []string{"a", "b", "c", "d", "e"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v", got)
		}
	}
}

func TestRange(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := s.Range("k03", "k07")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("Range returned %d pairs, want 4", len(pairs))
	}
	if pairs[0].Key != "k03" || pairs[3].Key != "k06" {
		t.Fatalf("Range bounds wrong: %v..%v", pairs[0].Key, pairs[3].Key)
	}
	all, err := s.Range("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("full Range returned %d", len(all))
	}
}

func TestValuesEncryptedAtRest(t *testing.T) {
	s := newStore(t)
	if err := s.Put("k", []byte("SENSITIVE-READING")); err != nil {
		t.Fatal(err)
	}
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		if bytes.Contains(n.value, []byte("SENSITIVE-READING")) {
			t.Fatal("plaintext at rest")
		}
	}
}

func TestValueSwapDetected(t *testing.T) {
	s := newStore(t)
	_ = s.Put("a", []byte("va"))
	_ = s.Put("b", []byte("vb"))
	// Storage layer swaps the sealed values behind the keys.
	na, nb := s.head.next[0], s.head.next[0].next[0]
	na.value, nb.value = nb.value, na.value
	if _, err := s.Get("a"); !errors.Is(err, ErrTampered) {
		t.Fatalf("value swap undetected: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(storeKey(), 2, blob, 0)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := Equal(s, restored)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("restored store differs")
	}
	if restored.Version() != s.Version() {
		t.Fatal("version not carried through snapshot")
	}
}

func TestSnapshotTamperDetected(t *testing.T) {
	s := newStore(t)
	_ = s.Put("k", []byte("v"))
	blob, _ := s.Snapshot()
	blob[len(blob)/2] ^= 1
	if _, err := Load(storeKey(), 2, blob, 0); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestSnapshotWrongKey(t *testing.T) {
	s := newStore(t)
	_ = s.Put("k", []byte("v"))
	blob, _ := s.Snapshot()
	var wrong cryptbox.Key
	wrong[0] = 0xEE
	if _, err := Load(wrong, 2, blob, 0); !errors.Is(err, ErrTampered) {
		t.Fatalf("err = %v, want ErrTampered", err)
	}
}

func TestRollbackDetected(t *testing.T) {
	s := newStore(t)
	_ = s.Put("balance", []byte("100"))
	oldBlob, _ := s.Snapshot()
	oldVersion := s.Version()
	_ = s.Put("balance", []byte("50"))
	// The attacker serves the old snapshot; the loader expects at least
	// the current version.
	if _, err := Load(storeKey(), 2, oldBlob, oldVersion+1); !errors.Is(err, ErrRollback) {
		t.Fatalf("err = %v, want ErrRollback", err)
	}
	// Loading with the correct expectation works.
	if _, err := Load(storeKey(), 2, oldBlob, oldVersion); err != nil {
		t.Fatal(err)
	}
}

func TestVersionMonotonic(t *testing.T) {
	s := newStore(t)
	v0 := s.Version()
	_ = s.Put("a", []byte("1"))
	v1 := s.Version()
	s.Delete("a")
	v2 := s.Version()
	if !(v0 < v1 && v1 < v2) {
		t.Fatalf("version not monotonic: %d %d %d", v0, v1, v2)
	}
}

func TestLargeStoreOrderedAndComplete(t *testing.T) {
	s := newStore(t)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("key-%05d", (i*7919)%n), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != n {
		t.Fatalf("Len = %d, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("keys not sorted")
	}
}

func TestPropPutGetRoundTrip(t *testing.T) {
	s := newStore(t)
	f := func(key string, value []byte) bool {
		if err := s.Put(key, value); err != nil {
			return false
		}
		got, err := s.Get(key)
		return err == nil && bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropModelEquivalence(t *testing.T) {
	// The skip list must behave like a map + sort.
	type op struct {
		Key    string
		Value  []byte
		Delete bool
	}
	f := func(ops []op) bool {
		s, err := New(storeKey(), 3)
		if err != nil {
			return false
		}
		model := map[string][]byte{}
		for _, o := range ops {
			if o.Delete {
				delete(model, o.Key)
				s.Delete(o.Key)
			} else {
				model[o.Key] = o.Value
				if err := s.Put(o.Key, o.Value); err != nil {
					return false
				}
			}
		}
		if s.Len() != len(model) {
			return false
		}
		pairs, err := s.Range("", "")
		if err != nil {
			return false
		}
		for _, p := range pairs {
			if !bytes.Equal(model[p.Key], p.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
