package kvstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
)

// Table is the structured layer of the secure data store: named columns,
// a primary key, and secondary indexes, all stored as encrypted rows in an
// underlying Store. This is the "secure structured data store" building
// block of paper §III-B(3) that the smart-grid applications keep their
// meter registries and aggregates in.
type Table struct {
	name    string
	store   *Store
	schema  Schema
	indexes map[string]bool // indexed column names
}

// Schema declares a table's columns. The first column is the primary key.
type Schema struct {
	Columns []string `json:"columns"`
}

// Row is one record, keyed by column name. Values are strings for
// simplicity of encoding; numeric columns store their canonical decimal
// form.
type Row map[string]string

// Table errors.
var (
	ErrSchema     = errors.New("kvstore: row does not match schema")
	ErrNoSuchCol  = errors.New("kvstore: no such column")
	ErrNotIndexed = errors.New("kvstore: column not indexed")
	ErrDupKey     = errors.New("kvstore: duplicate primary key")
)

// NewTable creates a table inside the store. Indexed columns get
// secondary indexes maintained on every mutation.
func NewTable(store *Store, name string, schema Schema, indexed ...string) (*Table, error) {
	if len(schema.Columns) == 0 {
		return nil, fmt.Errorf("%w: empty schema", ErrSchema)
	}
	t := &Table{name: name, store: store, schema: schema, indexes: map[string]bool{}}
	cols := map[string]bool{}
	for _, c := range schema.Columns {
		cols[c] = true
	}
	for _, c := range indexed {
		if !cols[c] {
			return nil, fmt.Errorf("%w: %q", ErrNoSuchCol, c)
		}
		t.indexes[c] = true
	}
	return t, nil
}

// PrimaryKey returns the primary-key column name.
func (t *Table) PrimaryKey() string { return t.schema.Columns[0] }

// rowKey / idxKey build the store keys. Both are namespaced under the
// table; index entries are "idx/<col>/<value>/<pk>" so a prefix range
// scan enumerates matches in primary-key order.
func (t *Table) rowKey(pk string) string {
	return fmt.Sprintf("tbl/%s/row/%s", t.name, pk)
}

func (t *Table) idxKey(col, val, pk string) string {
	return fmt.Sprintf("tbl/%s/idx/%s/%s/%s", t.name, col, val, pk)
}

func (t *Table) idxPrefix(col, val string) string {
	return fmt.Sprintf("tbl/%s/idx/%s/%s/", t.name, col, val)
}

// validate checks a row against the schema.
func (t *Table) validate(r Row) error {
	if len(r) != len(t.schema.Columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrSchema, len(r), len(t.schema.Columns))
	}
	for _, c := range t.schema.Columns {
		if _, ok := r[c]; !ok {
			return fmt.Errorf("%w: missing column %q", ErrSchema, c)
		}
	}
	pk := r[t.PrimaryKey()]
	if pk == "" || strings.Contains(pk, "/") {
		return fmt.Errorf("%w: invalid primary key %q", ErrSchema, pk)
	}
	return nil
}

// Insert stores a new row; it fails on duplicate primary keys.
func (t *Table) Insert(r Row) error {
	if err := t.validate(r); err != nil {
		return err
	}
	pk := r[t.PrimaryKey()]
	if _, err := t.store.Get(t.rowKey(pk)); err == nil {
		return fmt.Errorf("%w: %q", ErrDupKey, pk)
	}
	return t.write(r)
}

// Upsert stores a row, replacing any existing one with the same key and
// fixing up its index entries.
func (t *Table) Upsert(r Row) error {
	if err := t.validate(r); err != nil {
		return err
	}
	pk := r[t.PrimaryKey()]
	if old, err := t.Get(pk); err == nil {
		t.dropIndexEntries(old)
	}
	return t.write(r)
}

func (t *Table) write(r Row) error {
	pk := r[t.PrimaryKey()]
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := t.store.Put(t.rowKey(pk), raw); err != nil {
		return err
	}
	for col := range t.indexes {
		if err := t.store.Put(t.idxKey(col, r[col], pk), []byte(pk)); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) dropIndexEntries(r Row) {
	pk := r[t.PrimaryKey()]
	for col := range t.indexes {
		t.store.Delete(t.idxKey(col, r[col], pk))
	}
}

// Get returns the row with the given primary key.
func (t *Table) Get(pk string) (Row, error) {
	raw, err := t.store.Get(t.rowKey(pk))
	if err != nil {
		return nil, err
	}
	var r Row
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, err
	}
	return r, nil
}

// Delete removes a row and its index entries; it reports whether the key
// existed.
func (t *Table) Delete(pk string) bool {
	r, err := t.Get(pk)
	if err != nil {
		return false
	}
	t.dropIndexEntries(r)
	return t.store.Delete(t.rowKey(pk))
}

// Lookup returns all rows whose indexed column equals val, in primary-key
// order.
func (t *Table) Lookup(col, val string) ([]Row, error) {
	if !t.indexes[col] {
		return nil, fmt.Errorf("%w: %q", ErrNotIndexed, col)
	}
	prefix := t.idxPrefix(col, val)
	pairs, err := t.store.Range(prefix, prefix+"\xff")
	if err != nil {
		return nil, err
	}
	out := make([]Row, 0, len(pairs))
	for _, p := range pairs {
		r, err := t.Get(string(p.Value))
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Scan returns all rows in primary-key order.
func (t *Table) Scan() ([]Row, error) {
	prefix := fmt.Sprintf("tbl/%s/row/", t.name)
	pairs, err := t.store.Range(prefix, prefix+"\xff")
	if err != nil {
		return nil, err
	}
	out := make([]Row, 0, len(pairs))
	for _, p := range pairs {
		var r Row
		if err := json.Unmarshal(p.Value, &r); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Count returns the number of rows.
func (t *Table) Count() (int, error) {
	rows, err := t.Scan()
	return len(rows), err
}
