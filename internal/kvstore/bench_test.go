package kvstore

import (
	"fmt"
	"testing"

	"securecloud/internal/cryptbox"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	var k cryptbox.Key
	k[0] = 1
	s, err := New(k, 1)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkPut(b *testing.B) {
	s := benchStore(b)
	val := []byte("reading=1.234;voltage=229.8")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("meter-%08d", i), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := benchStore(b)
	const n = 10000
	for i := 0; i < n; i++ {
		if err := s.Put(fmt.Sprintf("meter-%08d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("meter-%08d", i%n)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRange100(b *testing.B) {
	s := benchStore(b)
	for i := 0; i < 10000; i++ {
		if err := s.Put(fmt.Sprintf("k%08d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := fmt.Sprintf("k%08d", (i*100)%9900)
		hi := fmt.Sprintf("k%08d", (i*100)%9900+100)
		if _, err := s.Range(lo, hi); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableLookup(b *testing.B) {
	s := benchStore(b)
	tbl, err := NewTable(s, "m", Schema{Columns: []string{"id", "feeder"}}, "feeder")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := tbl.Insert(Row{"id": fmt.Sprintf("m%05d", i), "feeder": fmt.Sprintf("f%03d", i%100)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Lookup("feeder", fmt.Sprintf("f%03d", i%100)); err != nil {
			b.Fatal(err)
		}
	}
}
