package kvstore

import (
	"errors"
	"fmt"
	"testing"
)

func meterTable(t *testing.T) *Table {
	t.Helper()
	s := newStore(t)
	tbl, err := NewTable(s, "meters", Schema{
		Columns: []string{"meter_id", "feeder", "zone", "kwh"},
	}, "feeder", "zone")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func meterRow(id, feeder, zone, kwh string) Row {
	return Row{"meter_id": id, "feeder": feeder, "zone": zone, "kwh": kwh}
}

func TestTableInsertGet(t *testing.T) {
	tbl := meterTable(t)
	if err := tbl.Insert(meterRow("m1", "f1", "z1", "10.5")); err != nil {
		t.Fatal(err)
	}
	r, err := tbl.Get("m1")
	if err != nil {
		t.Fatal(err)
	}
	if r["feeder"] != "f1" || r["kwh"] != "10.5" {
		t.Fatalf("row = %v", r)
	}
}

func TestTableDuplicateKeyRejected(t *testing.T) {
	tbl := meterTable(t)
	if err := tbl.Insert(meterRow("m1", "f1", "z1", "1")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(meterRow("m1", "f2", "z2", "2")); !errors.Is(err, ErrDupKey) {
		t.Fatalf("err = %v, want ErrDupKey", err)
	}
}

func TestTableSchemaValidation(t *testing.T) {
	tbl := meterTable(t)
	if err := tbl.Insert(Row{"meter_id": "m1"}); !errors.Is(err, ErrSchema) {
		t.Fatalf("short row: %v", err)
	}
	bad := meterRow("m1", "f1", "z1", "1")
	delete(bad, "kwh")
	bad["extra"] = "x"
	if err := tbl.Insert(bad); !errors.Is(err, ErrSchema) {
		t.Fatalf("wrong columns: %v", err)
	}
	if err := tbl.Insert(meterRow("", "f1", "z1", "1")); !errors.Is(err, ErrSchema) {
		t.Fatalf("empty pk: %v", err)
	}
	if err := tbl.Insert(meterRow("a/b", "f1", "z1", "1")); !errors.Is(err, ErrSchema) {
		t.Fatalf("pk with separator: %v", err)
	}
}

func TestTableSecondaryIndexLookup(t *testing.T) {
	tbl := meterTable(t)
	for i := 0; i < 10; i++ {
		feeder := fmt.Sprintf("f%d", i%3)
		if err := tbl.Insert(meterRow(fmt.Sprintf("m%02d", i), feeder, "z1", "1")); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tbl.Lookup("feeder", "f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Lookup returned %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r["feeder"] != "f1" {
			t.Fatalf("wrong feeder in lookup: %v", r)
		}
	}
}

func TestTableLookupUnindexedColumn(t *testing.T) {
	tbl := meterTable(t)
	if _, err := tbl.Lookup("kwh", "1"); !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("err = %v, want ErrNotIndexed", err)
	}
}

func TestTableUpsertMaintainsIndexes(t *testing.T) {
	tbl := meterTable(t)
	if err := tbl.Insert(meterRow("m1", "f1", "z1", "1")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Upsert(meterRow("m1", "f2", "z1", "2")); err != nil {
		t.Fatal(err)
	}
	old, err := tbl.Lookup("feeder", "f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 0 {
		t.Fatalf("stale index entry survives upsert: %v", old)
	}
	cur, err := tbl.Lookup("feeder", "f2")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) != 1 || cur[0]["kwh"] != "2" {
		t.Fatalf("Lookup after upsert = %v", cur)
	}
}

func TestTableDeleteCleansIndexes(t *testing.T) {
	tbl := meterTable(t)
	if err := tbl.Insert(meterRow("m1", "f1", "z1", "1")); err != nil {
		t.Fatal(err)
	}
	if !tbl.Delete("m1") {
		t.Fatal("Delete missed")
	}
	if tbl.Delete("m1") {
		t.Fatal("double delete")
	}
	rows, err := tbl.Lookup("feeder", "f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatal("index entry survives delete")
	}
}

func TestTableScanOrdered(t *testing.T) {
	tbl := meterTable(t)
	for _, id := range []string{"m3", "m1", "m2"} {
		if err := tbl.Insert(meterRow(id, "f1", "z1", "1")); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := tbl.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0]["meter_id"] != "m1" || rows[2]["meter_id"] != "m3" {
		t.Fatalf("Scan = %v", rows)
	}
	n, err := tbl.Count()
	if err != nil || n != 3 {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestTableRowsEncryptedAtRest(t *testing.T) {
	s := newStore(t)
	tbl, err := NewTable(s, "m", Schema{Columns: []string{"id", "secret"}}, "secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{"id": "a", "secret": "CONSUMPTION-PROFILE"}); err != nil {
		t.Fatal(err)
	}
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		for i := 0; i+10 < len(n.value); i++ {
			if string(n.value[i:i+10]) == "CONSUMPTIO" {
				t.Fatal("row plaintext at rest")
			}
		}
	}
}

func TestTableBadIndexColumn(t *testing.T) {
	s := newStore(t)
	if _, err := NewTable(s, "x", Schema{Columns: []string{"id"}}, "ghost"); !errors.Is(err, ErrNoSuchCol) {
		t.Fatalf("err = %v, want ErrNoSuchCol", err)
	}
	if _, err := NewTable(s, "x", Schema{}); !errors.Is(err, ErrSchema) {
		t.Fatalf("err = %v, want ErrSchema", err)
	}
}

func TestTableSurvivesSnapshot(t *testing.T) {
	s := newStore(t)
	tbl, err := NewTable(s, "meters", Schema{Columns: []string{"id", "feeder"}}, "feeder")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Row{"id": "m1", "feeder": "f1"}); err != nil {
		t.Fatal(err)
	}
	blob, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(storeKey(), 9, blob, 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, err := NewTable(restored, "meters", Schema{Columns: []string{"id", "feeder"}}, "feeder")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tbl2.Lookup("feeder", "f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["id"] != "m1" {
		t.Fatalf("rows after snapshot = %v", rows)
	}
}
