package fsshield

import (
	"bytes"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func acctView(t *testing.T) Accounting {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	enc, err := p.ECreate(16<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd([]byte("fs")); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}
	arena, err := enc.HeapArena()
	if err != nil {
		t.Fatal(err)
	}
	return Accounting{Mem: enc.Memory(), Arena: arena}
}

func TestAccountedFSChargesChunkIO(t *testing.T) {
	acct := acctView(t)
	fs := NewFS(4 << 10).WithAccounting(acct)
	var root cryptbox.Key
	data := bytes.Repeat([]byte("secure-cloud-"), 2000) // ~26 KB, 7 chunks

	acct.Mem.ResetAccounting()
	if err := fs.WriteFile("/data/readings", data, ModeEncrypted, root); err != nil {
		t.Fatal(err)
	}
	afterWrite := acct.Mem.Cycles()
	if afterWrite == 0 {
		t.Fatal("accounted WriteFile charged no cycles")
	}

	got, err := fs.ReadFile("/data/readings")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("accounted round-trip corrupted data")
	}
	if acct.Mem.Cycles() == afterWrite {
		t.Fatal("accounted ReadFile charged no cycles")
	}

	beforeChunk := acct.Mem.Cycles()
	if _, err := fs.ReadChunk("/data/readings", 2); err != nil {
		t.Fatal(err)
	}
	chunkCost := acct.Mem.Cycles() - beforeChunk
	if chunkCost == 0 {
		t.Fatal("accounted ReadChunk charged no cycles")
	}
	if chunkCost >= acct.Mem.Cycles()-afterWrite-chunkCost {
		t.Fatal("single-chunk read should cost less than the whole-file read")
	}
}

func TestUnaccountedFSUnchanged(t *testing.T) {
	fs := NewFS(4 << 10)
	var root cryptbox.Key
	if err := fs.WriteFile("/f", []byte("x"), ModeEncrypted, root); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "x" {
		t.Fatal("unaccounted FS round-trip failed")
	}
}
