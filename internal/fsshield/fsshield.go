// Package fsshield implements SCONE's protected file system layer as
// described in the SecureCloud paper (§V-A): every protected file is split
// into chunks, each chunk is encrypted and authenticated, and an "FS
// protection file" records the message authentication codes of all chunks
// together with the per-file encryption keys. The protection file itself is
// then either encrypted (confidential images) or only signed (images meant
// to be customised by end users, where integrity suffices until the
// customisation is finished).
//
// The authenticated-data layout defends against the full untrusted-storage
// threat model: chunk substitution, reordering, truncation, extension,
// cross-file splicing and rollback to stale chunk versions are all detected,
// because each chunk's MAC is bound to (path, chunk index, chunk count,
// file version) and pinned in the protection file.
package fsshield

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// DefaultChunkSize is the protection granularity. SCONE shields file I/O at
// block granularity; 64 KiB balances MAC-table size against write
// amplification.
const DefaultChunkSize = 64 << 10

// Mode selects per-file protection.
type Mode int

const (
	// ModeEncrypted provides confidentiality + integrity (AES-GCM).
	ModeEncrypted Mode = iota
	// ModeIntegrityOnly provides integrity only; contents stay readable so
	// end users can customise the image before sealing it.
	ModeIntegrityOnly
)

func (m Mode) String() string {
	if m == ModeEncrypted {
		return "encrypted"
	}
	return "integrity-only"
}

// Errors reported by the shield.
var (
	ErrTampered  = errors.New("fsshield: integrity check failed")
	ErrNotFound  = errors.New("fsshield: file not in protection file")
	ErrShortRead = errors.New("fsshield: chunk missing or truncated")
)

// FileEntry is the protection record of one file.
type FileEntry struct {
	Path    string                   `json:"path"`
	Mode    Mode                     `json:"mode"`
	Size    int64                    `json:"size"`
	Version uint64                   `json:"version"`
	Key     cryptbox.Key             `json:"key"`
	MACs    [][cryptbox.MACSize]byte `json:"macs"`
}

// ProtectionFile is the FS protection file: the authoritative map from
// paths to chunk MACs and keys. Access to it is what gates access to the
// protected file system.
type ProtectionFile struct {
	ChunkSize int                   `json:"chunk_size"`
	Files     map[string]*FileEntry `json:"files"`
}

// NewProtectionFile returns an empty protection file.
func NewProtectionFile(chunkSize int) *ProtectionFile {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	return &ProtectionFile{ChunkSize: chunkSize, Files: make(map[string]*FileEntry)}
}

// Paths returns the protected paths in sorted order. The slice is freshly
// built on every call (unlike the pre-fix FS.Blobs, it never aliased
// internal state — audited alongside that fix).
func (pf *ProtectionFile) Paths() []string {
	out := make([]string, 0, len(pf.Files))
	for p := range pf.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Marshal encodes the protection file.
func (pf *ProtectionFile) Marshal() ([]byte, error) { return json.Marshal(pf) }

// Unmarshal decodes a protection file.
func Unmarshal(b []byte) (*ProtectionFile, error) {
	var pf ProtectionFile
	if err := json.Unmarshal(b, &pf); err != nil {
		return nil, fmt.Errorf("fsshield: decoding protection file: %w", err)
	}
	if pf.Files == nil {
		pf.Files = make(map[string]*FileEntry)
	}
	return &pf, nil
}

// Seal encrypts the protection file under key (the confidential-image
// flow). The returned blob is what gets added to the image.
func (pf *ProtectionFile) Seal(key cryptbox.Key) ([]byte, error) {
	raw, err := pf.Marshal()
	if err != nil {
		return nil, err
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return box.Seal(raw, []byte("fs-protection-file"))
}

// OpenSealed decrypts a blob produced by Seal.
func OpenSealed(blob []byte, key cryptbox.Key) (*ProtectionFile, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	raw, err := box.Open(blob, []byte("fs-protection-file"))
	if err != nil {
		return nil, fmt.Errorf("fsshield: %w", ErrTampered)
	}
	return Unmarshal(raw)
}

// Sign produces a detached Ed25519 signature over the protection file (the
// customisable-image flow: integrity without confidentiality).
func (pf *ProtectionFile) Sign(priv ed25519.PrivateKey) ([]byte, error) {
	raw, err := pf.Marshal()
	if err != nil {
		return nil, err
	}
	return ed25519.Sign(priv, raw), nil
}

// VerifySignature checks a detached signature produced by Sign.
func VerifySignature(raw, sig []byte, pub ed25519.PublicKey) bool {
	return ed25519.Verify(pub, raw, sig)
}

// chunkAAD binds a ciphertext chunk to its position and file version.
func chunkAAD(path string, version uint64, idx, total int) []byte {
	return []byte(fmt.Sprintf("%s|v%d|%d/%d", path, version, idx, total))
}

// ChunkAAD is the exported chunk position binding: (path, version, index,
// chunk count) rendered exactly as the protected file system binds its own
// chunks. Other sealed-chunk logs built on the fsshield format — the
// kvstore write-ahead log uses (log name, epoch, sequence, 0 for
// open-ended) — share it so their records get the same substitution,
// reordering, splicing and rollback protection.
func ChunkAAD(path string, version uint64, idx, total int) []byte {
	return chunkAAD(path, version, idx, total)
}

// MACChunk is the exported form of the pooled chunk MAC: the tag over
// stored||aad that pins one sealed chunk to its ChunkAAD position.
func MACChunk(key cryptbox.Key, stored, aad []byte) [cryptbox.MACSize]byte {
	return macChunk(key, stored, aad)
}

// VerifyChunkMAC is the verifying counterpart of MACChunk.
func VerifyChunkMAC(key cryptbox.Key, stored, aad []byte, tag [cryptbox.MACSize]byte) bool {
	return verifyChunkMAC(key, stored, aad, tag)
}

// macChunk computes the chunk MAC over stored||aad in a pooled scratch
// buffer — the per-chunk concatenation sits on the data plane's hot path
// (every protected read of every container boot), so it must not allocate.
func macChunk(key cryptbox.Key, stored, aad []byte) [cryptbox.MACSize]byte {
	buf := cryptbox.GetScratch()
	buf = append(append(buf, stored...), aad...)
	tag := cryptbox.MAC(key, buf)
	cryptbox.PutScratch(buf)
	return tag
}

// verifyChunkMAC is the verifying counterpart of macChunk.
func verifyChunkMAC(key cryptbox.Key, stored, aad []byte, tag [cryptbox.MACSize]byte) bool {
	buf := cryptbox.GetScratch()
	buf = append(append(buf, stored...), aad...)
	ok := cryptbox.VerifyMAC(key, buf, tag)
	cryptbox.PutScratch(buf)
	return ok
}

// Accounting wires an FS to the simulated SGX memory hierarchy: the
// enclave-side copy of every protected chunk (out on write, in on read) is
// charged through the given Memory view. A zero Accounting leaves the FS
// unaccounted.
type Accounting = enclave.Accounting

// fileRegion is the simulated placement of one protected file's chunks:
// they are laid out contiguously, so a whole-file read or write is a single
// bulk access rather than one accounting round-trip per chunk.
type fileRegion struct {
	addr   uint64
	size   int
	cap    int   // allocated bytes; rewrites reuse the region while they fit
	chunks []int // stored size per chunk, for random-access offsets
}

// FS is a protected file system: ciphertext blobs plus the protection file
// that authenticates them. Blobs live on untrusted storage (the image
// layers, a host volume); the protection file is the trusted root.
type FS struct {
	pf    *ProtectionFile
	blobs map[string][][]byte // path -> ciphertext chunks

	acct    Accounting
	regions map[string]fileRegion
}

// NewFS returns an empty protected file system with the given chunk size.
func NewFS(chunkSize int) *FS {
	return &FS{pf: NewProtectionFile(chunkSize), blobs: make(map[string][][]byte)}
}

// OpenFS binds an existing protection file to its ciphertext blobs
// (e.g. after pulling an image: blobs from the layers, pf from the SCF).
func OpenFS(pf *ProtectionFile, blobs map[string][][]byte) *FS {
	if blobs == nil {
		blobs = make(map[string][][]byte)
	}
	return &FS{pf: pf, blobs: blobs}
}

// WithAccounting routes this FS's chunk I/O through the simulated memory
// hierarchy and returns the FS. Call it once, before any protected I/O.
func (fs *FS) WithAccounting(acct Accounting) *FS {
	fs.acct = acct
	return fs
}

func (fs *FS) accounted() bool { return fs.acct.Enabled() }

// placeFile lays out a file's stored chunks contiguously in simulated
// memory and charges the writing copy as one bulk access. Rewrites reuse
// the path's existing region while the new contents fit, so repeatedly
// updating one file does not bleed the arena dry.
func (fs *FS) placeFile(path string, chunks [][]byte) {
	if !fs.accounted() {
		return
	}
	if fs.regions == nil {
		fs.regions = make(map[string]fileRegion)
	}
	r := fileRegion{chunks: make([]int, len(chunks))}
	for i, c := range chunks {
		r.chunks[i] = len(c)
		r.size += len(c)
	}
	if r.size == 0 {
		r.size = 1
	}
	if old, ok := fs.regions[path]; ok && r.size <= old.cap {
		r.addr, r.cap = old.addr, old.cap
	} else {
		// Grow with slack so rewrites whose size drifts upward settle into
		// one region instead of reallocating on every small increase.
		r.cap = r.size + r.size/2
		r.addr = fs.acct.Arena.Alloc(r.cap)
	}
	fs.regions[path] = r
	fs.acct.Mem.AccessRange(r.addr, r.size, true)
}

// ProtectionFile returns the trusted protection records.
func (fs *FS) ProtectionFile() *ProtectionFile { return fs.pf }

// Blobs returns a deep copy of the ciphertext chunks (what an image build
// publishes). It must never return the live map: a caller holding it could
// alias and mutate sealed chunk storage underneath the protection file,
// turning every later ReadFile into a spurious ErrTampered — or worse,
// silently corrupting an integrity-only file before it is sealed. Tamper
// simulation in tests goes through the internal field on purpose.
func (fs *FS) Blobs() map[string][][]byte {
	out := make(map[string][][]byte, len(fs.blobs))
	for path, chunks := range fs.blobs {
		cp := make([][]byte, len(chunks))
		for i, c := range chunks {
			cp[i] = append([]byte(nil), c...)
		}
		out[path] = cp
	}
	return out
}

// WriteFile protects data under path with the given mode, deriving the
// per-file key from rootKey. Rewriting a path bumps its version so stale
// chunks from the previous version no longer verify (anti-rollback).
func (fs *FS) WriteFile(path string, data []byte, mode Mode, rootKey cryptbox.Key) error {
	key, err := cryptbox.DeriveKey(rootKey, "file:"+path)
	if err != nil {
		return err
	}
	version := uint64(1)
	if old, ok := fs.pf.Files[path]; ok {
		version = old.Version + 1
	}
	cs := fs.pf.ChunkSize
	total := (len(data) + cs - 1) / cs
	if total == 0 {
		total = 1
	}
	entry := &FileEntry{
		Path: path, Mode: mode, Size: int64(len(data)), Version: version, Key: key,
		MACs: make([][cryptbox.MACSize]byte, 0, total),
	}
	chunks := make([][]byte, 0, total)
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return err
	}
	for i := 0; i < total; i++ {
		lo := i * cs
		hi := lo + cs
		if hi > len(data) {
			hi = len(data)
		}
		plain := data[lo:hi]
		var stored []byte
		if mode == ModeEncrypted {
			stored, err = box.Seal(plain, chunkAAD(path, version, i, total))
			if err != nil {
				return err
			}
		} else {
			stored = append([]byte(nil), plain...)
		}
		entry.MACs = append(entry.MACs, macChunk(key, stored, chunkAAD(path, version, i, total)))
		chunks = append(chunks, stored)
	}
	fs.pf.Files[path] = entry
	fs.blobs[path] = chunks
	fs.placeFile(path, chunks)
	return nil
}

// ReadFile verifies and (if needed) decrypts the whole file at path.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	entry, ok := fs.pf.Files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	chunks, ok := fs.blobs[path]
	if !ok || len(chunks) != len(entry.MACs) {
		return nil, fmt.Errorf("%w: %s has %d of %d chunks", ErrShortRead, path, len(chunks), len(entry.MACs))
	}
	box, err := cryptbox.NewBox(entry.Key)
	if err != nil {
		return nil, err
	}
	if r, ok := fs.regions[path]; ok && fs.accounted() {
		// One bulk access covers the whole file's chunk copies.
		fs.acct.Mem.AccessRange(r.addr, r.size, false)
	}
	out := make([]byte, 0, entry.Size)
	for i, stored := range chunks {
		aad := chunkAAD(path, entry.Version, i, len(chunks))
		if !verifyChunkMAC(entry.Key, stored, aad, entry.MACs[i]) {
			return nil, fmt.Errorf("%w: %s chunk %d", ErrTampered, path, i)
		}
		if entry.Mode == ModeEncrypted {
			plain, err := box.Open(stored, aad)
			if err != nil {
				return nil, fmt.Errorf("%w: %s chunk %d", ErrTampered, path, i)
			}
			out = append(out, plain...)
		} else {
			out = append(out, stored...)
		}
	}
	if int64(len(out)) != entry.Size {
		return nil, fmt.Errorf("%w: %s decodes to %d bytes, protection file says %d",
			ErrTampered, path, len(out), entry.Size)
	}
	return out, nil
}

// ReadChunk verifies and decrypts a single chunk (random access I/O).
func (fs *FS) ReadChunk(path string, idx int) ([]byte, error) {
	entry, ok := fs.pf.Files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	chunks := fs.blobs[path]
	if idx < 0 || idx >= len(entry.MACs) || idx >= len(chunks) {
		return nil, fmt.Errorf("%w: %s chunk %d", ErrShortRead, path, idx)
	}
	aad := chunkAAD(path, entry.Version, idx, len(entry.MACs))
	stored := chunks[idx]
	if r, ok := fs.regions[path]; ok && fs.accounted() && idx < len(r.chunks) {
		off := 0
		for i := 0; i < idx; i++ {
			off += r.chunks[i]
		}
		fs.acct.Mem.AccessRange(r.addr+uint64(off), len(stored), false)
	}
	if !verifyChunkMAC(entry.Key, stored, aad, entry.MACs[idx]) {
		return nil, fmt.Errorf("%w: %s chunk %d", ErrTampered, path, idx)
	}
	if entry.Mode == ModeEncrypted {
		box, err := cryptbox.NewBox(entry.Key)
		if err != nil {
			return nil, err
		}
		plain, err := box.Open(stored, aad)
		if err != nil {
			return nil, fmt.Errorf("%w: %s chunk %d", ErrTampered, path, idx)
		}
		return plain, nil
	}
	return append([]byte(nil), stored...), nil
}

// Remove drops a path from both the protection file and the blob store.
// The simulated region is not reclaimed (arena addresses are bump-only).
func (fs *FS) Remove(path string) {
	delete(fs.pf.Files, path)
	delete(fs.blobs, path)
	delete(fs.regions, path)
}
