package fsshield

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"
	"testing/quick"

	"securecloud/internal/cryptbox"
)

func rootKey() cryptbox.Key {
	var k cryptbox.Key
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		fs := NewFS(1024)
		data := bytes.Repeat([]byte("smart-grid-telemetry."), 500) // ~10 chunks
		if err := fs.WriteFile("/data/meters.csv", data, mode, rootKey()); err != nil {
			t.Fatal(err)
		}
		got, err := fs.ReadFile("/data/meters.csv")
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("mode %v: round trip mismatch", mode)
		}
	}
}

func TestEncryptedModeHidesPlaintext(t *testing.T) {
	fs := NewFS(1024)
	secret := bytes.Repeat([]byte("SECRETSECRET"), 200)
	if err := fs.WriteFile("/etc/key.pem", secret, ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range fs.Blobs()["/etc/key.pem"] {
		if bytes.Contains(chunk, []byte("SECRETSECRET")) {
			t.Fatal("plaintext visible in encrypted blob")
		}
	}
}

func TestIntegrityOnlyKeepsPlaintextReadable(t *testing.T) {
	fs := NewFS(1024)
	if err := fs.WriteFile("/app/config.yaml", []byte("listen: :8080"), ModeIntegrityOnly, rootKey()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fs.Blobs()["/app/config.yaml"][0], []byte("listen")) {
		t.Fatal("integrity-only blob is not readable plaintext")
	}
}

func TestTamperedChunkDetected(t *testing.T) {
	for _, mode := range []Mode{ModeEncrypted, ModeIntegrityOnly} {
		fs := NewFS(512)
		data := bytes.Repeat([]byte("x"), 2000)
		if err := fs.WriteFile("/f", data, mode, rootKey()); err != nil {
			t.Fatal(err)
		}
		// Tamper the untrusted store directly (Blobs() hands out copies).
		fs.blobs["/f"][2][0] ^= 1
		if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrTampered) {
			t.Fatalf("mode %v: tampering not detected: %v", mode, err)
		}
	}
}

func TestChunkReorderDetected(t *testing.T) {
	fs := NewFS(512)
	data := append(bytes.Repeat([]byte("A"), 512), bytes.Repeat([]byte("B"), 512)...)
	if err := fs.WriteFile("/f", data, ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	b := fs.blobs["/f"]
	b[0], b[1] = b[1], b[0]
	if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("chunk reordering not detected: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	fs := NewFS(512)
	if err := fs.WriteFile("/f", bytes.Repeat([]byte("x"), 2048), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	fs.blobs["/f"] = fs.blobs["/f"][:2]
	if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrShortRead) {
		t.Fatalf("truncation not detected: %v", err)
	}
}

func TestCrossFileSpliceDetected(t *testing.T) {
	fs := NewFS(512)
	if err := fs.WriteFile("/a", bytes.Repeat([]byte("a"), 512), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/b", bytes.Repeat([]byte("b"), 512), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	fs.blobs["/a"][0] = fs.blobs["/b"][0]
	if _, err := fs.ReadFile("/a"); !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-file splice not detected: %v", err)
	}
}

func TestRollbackToOldVersionDetected(t *testing.T) {
	fs := NewFS(512)
	if err := fs.WriteFile("/f", []byte("version-1"), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	old := fs.blobs["/f"][0]
	if err := fs.WriteFile("/f", []byte("version-2"), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	fs.blobs["/f"][0] = old
	if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrTampered) {
		t.Fatalf("rollback to stale chunk not detected: %v", err)
	}
}

func TestReadMissingFile(t *testing.T) {
	fs := NewFS(0)
	if _, err := fs.ReadFile("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := NewFS(512)
	if err := fs.WriteFile("/empty", nil, ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read back %d bytes", len(got))
	}
}

func TestReadChunkRandomAccess(t *testing.T) {
	fs := NewFS(512)
	data := make([]byte, 512*3)
	for i := range data {
		data[i] = byte(i / 512)
	}
	if err := fs.WriteFile("/f", data, ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	chunk, err := fs.ReadChunk("/f", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, data[512:1024]) {
		t.Fatal("ReadChunk returned wrong data")
	}
	if _, err := fs.ReadChunk("/f", 99); !errors.Is(err, ErrShortRead) {
		t.Fatalf("out-of-range chunk: %v", err)
	}
	if _, err := fs.ReadChunk("/nope", 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file chunk: %v", err)
	}
}

func TestProtectionFileSealRoundTrip(t *testing.T) {
	fs := NewFS(512)
	if err := fs.WriteFile("/f", []byte("data"), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	key, _ := cryptbox.DeriveKey(rootKey(), "pf")
	blob, err := fs.ProtectionFile().Seal(key)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := OpenSealed(blob, key)
	if err != nil {
		t.Fatal(err)
	}
	got := OpenFS(pf, fs.Blobs())
	data, err := got.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("data")) {
		t.Fatal("data mismatch after protection file round trip")
	}
}

func TestProtectionFileSealWrongKey(t *testing.T) {
	pf := NewProtectionFile(0)
	k1, _ := cryptbox.DeriveKey(rootKey(), "a")
	k2, _ := cryptbox.DeriveKey(rootKey(), "b")
	blob, _ := pf.Seal(k1)
	if _, err := OpenSealed(blob, k2); err == nil {
		t.Fatal("wrong key opened sealed protection file")
	}
}

func TestProtectionFileSignature(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pf := NewProtectionFile(0)
	raw, _ := pf.Marshal()
	sig, err := pf.Sign(priv)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifySignature(raw, sig, pub) {
		t.Fatal("genuine signature rejected")
	}
	raw2 := append(append([]byte(nil), raw...), ' ')
	if VerifySignature(raw2, sig, pub) {
		t.Fatal("modified protection file accepted")
	}
}

func TestPathsSorted(t *testing.T) {
	fs := NewFS(0)
	for _, p := range []string{"/c", "/a", "/b"} {
		if err := fs.WriteFile(p, []byte("x"), ModeEncrypted, rootKey()); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.ProtectionFile().Paths()
	want := []string{"/a", "/b", "/c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Paths() = %v, want %v", got, want)
		}
	}
}

func TestRemove(t *testing.T) {
	fs := NewFS(0)
	if err := fs.WriteFile("/f", []byte("x"), ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	fs.Remove("/f")
	if _, err := fs.ReadFile("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removed file still readable: %v", err)
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	fs := NewFS(512)
	if err := fs.WriteFile("/f", bytes.Repeat([]byte("z"), 1500), ModeIntegrityOnly, rootKey()); err != nil {
		t.Fatal(err)
	}
	raw, err := fs.ProtectionFile().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pf.ChunkSize != 512 || len(pf.Files) != 1 {
		t.Fatal("protection file fields lost in marshal round trip")
	}
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage unmarshalled")
	}
}

func TestPropRoundTripArbitraryData(t *testing.T) {
	f := func(data []byte, encrypted bool) bool {
		mode := ModeIntegrityOnly
		if encrypted {
			mode = ModeEncrypted
		}
		fs := NewFS(256)
		if err := fs.WriteFile("/p", data, mode, rootKey()); err != nil {
			return false
		}
		got, err := fs.ReadFile("/p")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropAnyChunkBitFlipDetected(t *testing.T) {
	f := func(seed uint8, chunkIdx, byteIdx uint16) bool {
		fs := NewFS(128)
		data := bytes.Repeat([]byte{seed}, 128*4)
		if err := fs.WriteFile("/p", data, ModeEncrypted, rootKey()); err != nil {
			return false
		}
		chunks := fs.blobs["/p"]
		c := chunks[int(chunkIdx)%len(chunks)]
		c[int(byteIdx)%len(c)] ^= 0x40
		_, err := fs.ReadFile("/p")
		return errors.Is(err, ErrTampered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBlobsReturnsCopies is the regression test for Blobs() handing out the
// live chunk map: mutating the returned map or its chunk bytes must not
// corrupt (or, worse, silently tamper with) the store's protected state.
func TestBlobsReturnsCopies(t *testing.T) {
	fs := NewFS(64)
	data := bytes.Repeat([]byte("durable"), 40)
	if err := fs.WriteFile("/a", data, ModeEncrypted, rootKey()); err != nil {
		t.Fatal(err)
	}
	blobs := fs.Blobs()
	for _, chunks := range blobs {
		for _, c := range chunks {
			for i := range c {
				c[i] ^= 0xFF
			}
		}
	}
	delete(blobs, "/a")
	got, err := fs.ReadFile("/a")
	if err != nil {
		t.Fatalf("store corrupted through Blobs() alias: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("store contents changed through Blobs() alias")
	}
}
