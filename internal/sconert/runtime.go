package sconert

import (
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/fsshield"
	"securecloud/internal/shield"
)

// Runtime is one booted SCONE runtime: an attested enclave holding its SCF,
// with a shielded syscall interface, a protected file-system view and a
// user-level scheduler. It is what a secure container runs.
type Runtime struct {
	enc    *enclave.Enclave
	shield *shield.Shield
	scf    SCF
	fs     *fsshield.FS
	sched  *Scheduler

	stdoutFD int
	stderrFD int
}

// BootConfig gathers the pieces needed to boot a runtime.
type BootConfig struct {
	Enclave *enclave.Enclave
	Quoter  *attest.Quoter
	CAS     *CAS
	Host    *shield.Host
	Mode    shield.CallMode
	// SealedProtectionFile is the encrypted FS protection file from the
	// image; nil when the container has no protected files.
	SealedProtectionFile []byte
	// Blobs are the ciphertext chunks of the protected file system.
	Blobs map[string][][]byte
	// TCS is the number of enclave entry points (thread control
	// structures) available to the scheduler; SGX v1 fixes this at build
	// time. Defaults to 4.
	TCS int
}

// ErrFSHashMismatch is returned when the protection file in the image does
// not match the hash pinned in the SCF (a substituted or stale image).
var ErrFSHashMismatch = errors.New("sconert: FS protection file does not match SCF hash")

// Boot runs the secure container startup sequence: attest, fetch the SCF
// over the protected channel, verify and open the FS protection file, and
// wire up shielded stdio streams.
func Boot(cfg BootConfig) (*Runtime, error) {
	if cfg.Enclave == nil || cfg.Quoter == nil || cfg.CAS == nil || cfg.Host == nil {
		return nil, errors.New("sconert: incomplete boot configuration")
	}
	scf, err := FetchSCF(cfg.Enclave, cfg.Quoter, cfg.CAS)
	if err != nil {
		return nil, fmt.Errorf("sconert: fetching SCF: %w", err)
	}
	rt := &Runtime{
		enc:    cfg.Enclave,
		shield: shield.New(cfg.Enclave, cfg.Host, cfg.Mode),
		scf:    scf,
	}
	if cfg.SealedProtectionFile != nil {
		if got := cryptbox.Sum(cfg.SealedProtectionFile); got != scf.FSProtectionHash {
			return nil, ErrFSHashMismatch
		}
		pf, err := fsshield.OpenSealed(cfg.SealedProtectionFile, scf.FSProtectionKey)
		if err != nil {
			return nil, fmt.Errorf("sconert: opening protection file: %w", err)
		}
		rt.fs = fsshield.OpenFS(pf, cfg.Blobs)
	}
	if rt.stdoutFD, err = rt.shield.Open("stdio/stdout", &scf.StdoutKey); err != nil {
		return nil, err
	}
	if rt.stderrFD, err = rt.shield.Open("stdio/stderr", &scf.StderrKey); err != nil {
		return nil, err
	}
	tcs := cfg.TCS
	if tcs <= 0 {
		tcs = 4
	}
	rt.sched = NewScheduler(cfg.Enclave, tcs)
	return rt, nil
}

// SCF returns the runtime's startup configuration.
func (rt *Runtime) SCF() SCF { return rt.scf }

// Enclave returns the underlying enclave.
func (rt *Runtime) Enclave() *enclave.Enclave { return rt.enc }

// Shield returns the syscall shield.
func (rt *Runtime) Shield() *shield.Shield { return rt.shield }

// FS returns the protected file system, or nil if the image had none.
func (rt *Runtime) FS() *fsshield.FS { return rt.fs }

// Scheduler returns the user-level scheduler.
func (rt *Runtime) Scheduler() *Scheduler { return rt.sched }

// Stdout writes an encrypted record to the container's stdout stream.
func (rt *Runtime) Stdout(line []byte) error {
	_, err := rt.shield.Write(rt.stdoutFD, line)
	return err
}

// Stderr writes an encrypted record to the container's stderr stream.
func (rt *Runtime) Stderr(line []byte) error {
	_, err := rt.shield.Write(rt.stderrFD, line)
	return err
}

// TCBBytes reports the amount of code+data inside the trusted computing
// base of this container: the enclave's committed pages. Everything else —
// Docker, the kernel, the hypervisor — stays outside, which is the point of
// the architecture (paper §III-A).
func (rt *Runtime) TCBBytes() uint64 {
	return rt.enc.Size()
}

// Scheduler is SCONE's user-level M:N scheduler: M application tasks
// multiplex onto N enclave threads (TCS). A task that would block on a
// syscall yields inside the enclave instead of exiting, so the expensive
// world switch is paid once per worker, not once per task or per syscall.
type Scheduler struct {
	enc *enclave.Enclave
	tcs int

	mu    sync.Mutex
	queue []func()

	tasksRun    uint64
	entriesUsed uint64
}

// NewScheduler builds a scheduler with the given number of TCS.
func NewScheduler(enc *enclave.Enclave, tcs int) *Scheduler {
	if tcs <= 0 {
		tcs = 1
	}
	return &Scheduler{enc: enc, tcs: tcs}
}

// Go queues a task for execution inside the enclave.
func (s *Scheduler) Go(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue = append(s.queue, fn)
}

// Run drains the task queue with up to TCS concurrent enclave threads and
// returns when all tasks have finished. Each worker enters the enclave
// once, runs many tasks, and exits once.
func (s *Scheduler) Run() error {
	s.mu.Lock()
	tasks := s.queue
	s.queue = nil
	s.mu.Unlock()
	if len(tasks) == 0 {
		return nil
	}

	workers := s.tcs
	if workers > len(tasks) {
		workers = len(tasks)
	}
	next := make(chan func())
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.enc.EEnter(); err != nil {
				errOnce.Do(func() { firstErr = err })
				// Drain so the feeder does not block.
				for range next {
				}
				return
			}
			s.mu.Lock()
			s.entriesUsed++
			s.mu.Unlock()
			for fn := range next {
				fn()
				s.mu.Lock()
				s.tasksRun++
				s.mu.Unlock()
			}
			_ = s.enc.EExit()
		}()
	}
	for _, fn := range tasks {
		next <- fn
	}
	close(next)
	wg.Wait()
	return firstErr
}

// SchedulerStats is the scheduler's counter snapshot. The gap between
// Tasks and Entries is the number of world switches the M:N design
// avoided.
type SchedulerStats struct {
	// Tasks counts user-level tasks executed.
	Tasks uint64
	// Entries counts enclave entries (EENTERs) used to run them.
	Entries uint64
}

// Stats returns the scheduler's counters so far.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SchedulerStats{Tasks: s.tasksRun, Entries: s.entriesUsed}
}

// StatsName implements stats.Source.
func (s *Scheduler) StatsName() string { return "sconert" }

// Snapshot implements stats.Source.
func (s *Scheduler) Snapshot() map[string]float64 {
	st := s.Stats()
	return map[string]float64{
		"tasks":   float64(st.Tasks),
		"entries": float64(st.Entries),
	}
}
