// Package sconert implements the SCONE runtime of SecureCloud (paper §IV,
// §V-A): the thin trusted runtime that lives with the application logic
// inside the enclave. It covers the startup configuration file (SCF) that
// carries all secrets of a secure container, the configuration and
// attestation service (CAS) that releases the SCF only to attested
// enclaves over an encrypted channel, and the user-level M:N scheduler
// that lets enclave threads run without world switches.
package sconert

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// SCF is the startup configuration file of one secure container. Quoting
// the paper: "The SCF contains keys to encrypt standard I/O streams, the
// hash and encryption key of the FS protection file, application arguments,
// as well as environment variables. Only an enclave whose identity has been
// verified can access the SCF."
type SCF struct {
	StdinKey  cryptbox.Key `json:"stdin_key"`
	StdoutKey cryptbox.Key `json:"stdout_key"`
	StderrKey cryptbox.Key `json:"stderr_key"`

	// FSProtectionKey decrypts the sealed FS protection file in the image.
	FSProtectionKey cryptbox.Key `json:"fs_protection_key"`
	// FSProtectionHash pins the exact protection file version, closing the
	// rollback window between image build and container start.
	FSProtectionHash cryptbox.Digest `json:"fs_protection_hash"`

	Args []string          `json:"args"`
	Env  map[string]string `json:"env"`
}

// NewSCF builds an SCF with fresh random stream keys.
func NewSCF(fsKey cryptbox.Key, fsHash cryptbox.Digest, args []string, env map[string]string) (SCF, error) {
	var scf SCF
	var err error
	if scf.StdinKey, err = cryptbox.NewRandomKey(); err != nil {
		return SCF{}, err
	}
	if scf.StdoutKey, err = cryptbox.NewRandomKey(); err != nil {
		return SCF{}, err
	}
	if scf.StderrKey, err = cryptbox.NewRandomKey(); err != nil {
		return SCF{}, err
	}
	scf.FSProtectionKey = fsKey
	scf.FSProtectionHash = fsHash
	scf.Args = args
	scf.Env = env
	return scf, nil
}

// Marshal encodes the SCF.
func (s SCF) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSCF decodes an SCF.
func UnmarshalSCF(b []byte) (SCF, error) {
	var s SCF
	if err := json.Unmarshal(b, &s); err != nil {
		return SCF{}, fmt.Errorf("sconert: decoding SCF: %w", err)
	}
	return s, nil
}

// CAS errors.
var (
	ErrNoSCF       = errors.New("sconert: no SCF registered for this enclave identity")
	ErrBadKeyShare = errors.New("sconert: malformed key share in report data")
)

// CAS is the configuration and attestation service: the trusted party
// (operated by the image owner, not the cloud) that hands each secure
// container its SCF after verifying the enclave's identity. Delivery runs
// over an attested ephemeral Diffie-Hellman channel: the enclave binds its
// X25519 public key into the attestation report, so only the attested
// enclave — not the untrusted host that proxies the messages — can decrypt
// the SCF. This models the paper's "TLS-protected connection that is
// established during enclave startup".
type CAS struct {
	svc *attest.Service

	mu      sync.Mutex
	entries []casEntry
}

type casEntry struct {
	policy attest.Policy
	scf    SCF
}

// NewCAS builds a CAS trusting the given attestation service.
func NewCAS(svc *attest.Service) *CAS {
	return &CAS{svc: svc}
}

// Register stores an SCF to be released to enclaves matching policy.
func (c *CAS) Register(policy attest.Policy, scf SCF) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = append(c.entries, casEntry{policy: policy, scf: scf})
}

// SCFResponse is the CAS reply: the service's ephemeral public key and the
// SCF sealed under the derived session key.
type SCFResponse struct {
	CASPublicKey []byte `json:"cas_public_key"`
	SealedSCF    []byte `json:"sealed_scf"`
}

// RequestSCF verifies the quote, matches it against registered policies,
// and returns the SCF encrypted to the X25519 public key carried in the
// quote's report data.
func (c *CAS) RequestSCF(q attest.Quote) (SCFResponse, error) {
	verdict, err := c.svc.Verify(q)
	if err != nil {
		return SCFResponse{}, err
	}
	c.mu.Lock()
	var scf *SCF
	for i := range c.entries {
		if c.entries[i].policy.Check(verdict) == nil {
			scf = &c.entries[i].scf
			break
		}
	}
	c.mu.Unlock()
	if scf == nil {
		return SCFResponse{}, ErrNoSCF
	}

	raw, err := scf.Marshal()
	if err != nil {
		return SCFResponse{}, err
	}
	pub, sealed, err := attest.SealToVerdict(verdict, scfChannelLabel, raw)
	if err != nil {
		return SCFResponse{}, fmt.Errorf("%w: %v", ErrBadKeyShare, err)
	}
	return SCFResponse{CASPublicKey: pub, SealedSCF: sealed}, nil
}

// scfChannelLabel names the SCF-release protocol on the shared attested
// sealed channel (attest.SealToVerdict / attest.OpenSealed), keeping its
// key derivation and AAD distinct from other release protocols such as the
// KeyBroker's service-key channel.
const scfChannelLabel = "scf"

// FetchSCF runs the enclave-side startup protocol: generate an ephemeral
// X25519 key inside the enclave, bind its public half into an attestation
// report, quote it, present the quote to the CAS, and decrypt the response.
// The untrusted host only ever relays ciphertext.
func FetchSCF(enc *enclave.Enclave, quoter *attest.Quoter, cas *CAS) (SCF, error) {
	priv, err := attest.NewChannelKey()
	if err != nil {
		return SCF{}, err
	}
	report, err := enc.CreateReport(priv.PublicKey().Bytes())
	if err != nil {
		return SCF{}, err
	}
	quote, err := quoter.Quote(report)
	if err != nil {
		return SCF{}, err
	}
	resp, err := cas.RequestSCF(quote)
	if err != nil {
		return SCF{}, err
	}
	raw, err := attest.OpenSealed(priv, resp.CASPublicKey, resp.SealedSCF, scfChannelLabel)
	if err != nil {
		return SCF{}, fmt.Errorf("%w: %v", ErrBadKeyShare, err)
	}
	return UnmarshalSCF(raw)
}

// HashSCFBinding is a helper producing the digest of arbitrary channel-
// binding material for report data.
func HashSCFBinding(parts ...[]byte) cryptbox.Digest {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d cryptbox.Digest
	copy(d[:], h.Sum(nil))
	return d
}
