package sconert

import (
	"bytes"
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"sync/atomic"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/fsshield"
	"securecloud/internal/shield"
)

// env bundles a full test environment: platform, attestation, CAS.
type env struct {
	platform *enclave.Platform
	svc      *attest.Service
	quoter   *attest.Quoter
	cas      *CAS
	host     *shield.Host
}

func newEnv(t *testing.T) *env {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	svc := attest.NewService()
	q, err := svc.Provision(p, "test-node")
	if err != nil {
		t.Fatal(err)
	}
	return &env{platform: p, svc: svc, quoter: q, cas: NewCAS(svc), host: shield.NewHost()}
}

func (e *env) buildEnclave(t *testing.T, code []byte) *enclave.Enclave {
	t.Helper()
	var signer cryptbox.Digest
	signer[0] = 0xAA
	enc, err := e.platform.ECreate(1<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EAdd(code); err != nil {
		t.Fatal(err)
	}
	if err := enc.EInit(); err != nil {
		t.Fatal(err)
	}
	return enc
}

func measurementPolicy(t *testing.T, enc *enclave.Enclave) attest.Policy {
	t.Helper()
	m, err := enc.Measurement()
	if err != nil {
		t.Fatal(err)
	}
	return attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}
}

func TestSCFMarshalRoundTrip(t *testing.T) {
	var fsKey cryptbox.Key
	fsKey[3] = 9
	scf, err := NewSCF(fsKey, cryptbox.Sum([]byte("pf")), []string{"serve", "--port=8080"}, map[string]string{"MODE": "prod"})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := scf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSCF(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.FSProtectionKey != fsKey || len(got.Args) != 2 || got.Env["MODE"] != "prod" {
		t.Fatal("SCF fields lost in round trip")
	}
	if _, err := UnmarshalSCF([]byte("junk")); err == nil {
		t.Fatal("garbage SCF accepted")
	}
}

func TestNewSCFKeysDistinct(t *testing.T) {
	scf, err := NewSCF(cryptbox.Key{}, cryptbox.Digest{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if scf.StdinKey == scf.StdoutKey || scf.StdoutKey == scf.StderrKey {
		t.Fatal("stream keys not distinct")
	}
}

func TestFetchSCFHappyPath(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	scf, _ := NewSCF(cryptbox.Key{1}, cryptbox.Digest{}, []string{"run"}, nil)
	e.cas.Register(measurementPolicy(t, enc), scf)

	got, err := FetchSCF(enc, e.quoter, e.cas)
	if err != nil {
		t.Fatal(err)
	}
	if got.FSProtectionKey != scf.FSProtectionKey || got.StdoutKey != scf.StdoutKey {
		t.Fatal("fetched SCF differs from registered SCF")
	}
}

func TestFetchSCFDeniedForWrongEnclave(t *testing.T) {
	e := newEnv(t)
	genuine := e.buildEnclave(t, []byte("genuine"))
	impostor := e.buildEnclave(t, []byte("impostor"))
	scf, _ := NewSCF(cryptbox.Key{1}, cryptbox.Digest{}, nil, nil)
	e.cas.Register(measurementPolicy(t, genuine), scf)

	if _, err := FetchSCF(impostor, e.quoter, e.cas); !errors.Is(err, ErrNoSCF) {
		t.Fatalf("impostor fetched SCF: %v", err)
	}
}

func TestFetchSCFDeniedWithoutRegistration(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	if _, err := FetchSCF(enc, e.quoter, e.cas); !errors.Is(err, ErrNoSCF) {
		t.Fatalf("err = %v, want ErrNoSCF", err)
	}
}

func TestCASRejectsBadQuote(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	scf, _ := NewSCF(cryptbox.Key{1}, cryptbox.Digest{}, nil, nil)
	e.cas.Register(measurementPolicy(t, enc), scf)

	r, _ := enc.CreateReport(make([]byte, 32))
	quote, _ := e.quoter.Quote(r)
	quote.Report.MRSigner[0] ^= 1
	if _, err := e.cas.RequestSCF(quote); err == nil {
		t.Fatal("CAS released SCF for a tampered quote")
	}
}

func TestCASChannelConfidentiality(t *testing.T) {
	// The CAS response must not contain the SCF in plaintext: the host
	// relaying it is untrusted.
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	marker := cryptbox.Key{0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF}
	scf, _ := NewSCF(marker, cryptbox.Digest{}, nil, nil)
	e.cas.Register(measurementPolicy(t, enc), scf)

	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	report, _ := enc.CreateReport(priv.PublicKey().Bytes())
	quote, _ := e.quoter.Quote(report)
	resp, err := e.cas.RequestSCF(quote)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(resp.SealedSCF, marker[:]) {
		t.Fatal("SCF key material visible in CAS response")
	}
}

func TestBootFullStack(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))

	// Build a protected FS like an image build would.
	rootKey := cryptbox.Key{7}
	pfs := fsshield.NewFS(1024)
	if err := pfs.WriteFile("/app/model.bin", bytes.Repeat([]byte("W"), 3000), fsshield.ModeEncrypted, rootKey); err != nil {
		t.Fatal(err)
	}
	pfKey, _ := cryptbox.DeriveKey(rootKey, "pf")
	sealedPF, err := pfs.ProtectionFile().Seal(pfKey)
	if err != nil {
		t.Fatal(err)
	}
	scf, _ := NewSCF(pfKey, cryptbox.Sum(sealedPF), []string{"serve"}, map[string]string{"A": "1"})
	e.cas.Register(measurementPolicy(t, enc), scf)

	rt, err := Boot(BootConfig{
		Enclave: enc, Quoter: e.quoter, CAS: e.cas, Host: e.host,
		Mode: shield.ModeAsync, SealedProtectionFile: sealedPF, Blobs: pfs.Blobs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.FS().ReadFile("/app/model.bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 3000 {
		t.Fatalf("protected file read %d bytes, want 3000", len(data))
	}
	if got := rt.SCF().Env["A"]; got != "1" {
		t.Fatalf("env lost: %q", got)
	}
	if rt.TCBBytes() != enc.Size() {
		t.Fatal("TCB accounting mismatch")
	}
}

func TestBootDetectsSubstitutedProtectionFile(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	pfKey := cryptbox.Key{9}
	pf := fsshield.NewProtectionFile(0)
	sealedPF, _ := pf.Seal(pfKey)
	scf, _ := NewSCF(pfKey, cryptbox.Sum(sealedPF), nil, nil)
	e.cas.Register(measurementPolicy(t, enc), scf)

	// The registry/host substitutes a different (also validly sealed)
	// protection file.
	other, _ := fsshield.NewProtectionFile(0).Seal(pfKey)
	_, err := Boot(BootConfig{
		Enclave: enc, Quoter: e.quoter, CAS: e.cas, Host: e.host,
		SealedProtectionFile: other,
	})
	if !errors.Is(err, ErrFSHashMismatch) {
		t.Fatalf("substituted protection file: err = %v, want ErrFSHashMismatch", err)
	}
}

func TestBootIncompleteConfig(t *testing.T) {
	if _, err := Boot(BootConfig{}); err == nil {
		t.Fatal("empty BootConfig accepted")
	}
}

func TestRuntimeStdioEncrypted(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	scf, _ := NewSCF(cryptbox.Key{1}, cryptbox.Digest{}, nil, nil)
	e.cas.Register(measurementPolicy(t, enc), scf)
	rt, err := Boot(BootConfig{Enclave: enc, Quoter: e.quoter, CAS: e.cas, Host: e.host})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Stdout([]byte("TOP-SECRET-OUTPUT")); err != nil {
		t.Fatal(err)
	}
	for _, rec := range e.host.Records("stdio/stdout") {
		if bytes.Contains(rec, []byte("TOP-SECRET-OUTPUT")) {
			t.Fatal("stdout plaintext reached the host")
		}
	}
	if err := rt.Stderr([]byte("diag")); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerRunsAllTasks(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	s := NewScheduler(enc, 4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		s.Go(func() { n.Add(1) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	st := s.Stats()
	if st.Tasks != 100 {
		t.Fatalf("Stats tasks = %d", st.Tasks)
	}
	if st.Entries > 4 {
		t.Fatalf("used %d enclave entries for 100 tasks with 4 TCS", st.Entries)
	}
}

func TestSchedulerAmortisesTransitions(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	s := NewScheduler(enc, 2)
	before := enc.Memory().Breakdown()[enclave.CauseTransition]
	for i := 0; i < 50; i++ {
		s.Go(func() {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	spent := enc.Memory().Breakdown()[enclave.CauseTransition] - before
	perTask := enc.Platform().Config().Cost.Transition * 50
	if spent >= perTask {
		t.Fatalf("scheduler spent %d transition cycles; naive per-task model spends %d", spent, perTask)
	}
}

func TestSchedulerEmptyRun(t *testing.T) {
	e := newEnv(t)
	enc := e.buildEnclave(t, []byte("app"))
	s := NewScheduler(enc, 2)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerUninitialisedEnclave(t *testing.T) {
	e := newEnv(t)
	var signer cryptbox.Digest
	enc, _ := e.platform.ECreate(1<<20, signer)
	s := NewScheduler(enc, 2)
	s.Go(func() {})
	if err := s.Run(); err == nil {
		t.Fatal("scheduler ran on an uninitialised enclave")
	}
}
