package transfer

import "securecloud/internal/cryptbox"

// MerkleRoot folds leaf digests into a binary Merkle root. Interior nodes
// hash a domain-separation prefix plus both children, so leaves cannot be
// confused with interior nodes (second-preimage hardening). An odd node at
// any level is promoted unchanged.
func MerkleRoot(leaves []cryptbox.Digest) cryptbox.Digest {
	if len(leaves) == 0 {
		return cryptbox.Sum([]byte("merkle-empty"))
	}
	level := append([]cryptbox.Digest(nil), leaves...)
	for len(level) > 1 {
		var next []cryptbox.Digest
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, hashPair(level[i], level[i+1]))
		}
		level = next
	}
	return level[0]
}

func hashPair(a, b cryptbox.Digest) cryptbox.Digest {
	buf := make([]byte, 0, 1+2*len(a))
	buf = append(buf, 0x01) // interior-node domain separator
	buf = append(buf, a[:]...)
	buf = append(buf, b[:]...)
	return cryptbox.Sum(buf)
}

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	Sibling cryptbox.Digest `json:"sibling"`
	// Left is true when the sibling sits to the left of the path.
	Left bool `json:"left"`
}

// Proof returns the Merkle inclusion proof for leaf idx, letting a party
// holding only the root verify one chunk without the full leaf list.
func Proof(leaves []cryptbox.Digest, idx int) []ProofStep {
	if idx < 0 || idx >= len(leaves) {
		return nil
	}
	var steps []ProofStep
	level := append([]cryptbox.Digest(nil), leaves...)
	pos := idx
	for len(level) > 1 {
		var next []cryptbox.Digest
		for i := 0; i < len(level); i += 2 {
			if i+1 == len(level) {
				next = append(next, level[i])
				continue
			}
			next = append(next, hashPair(level[i], level[i+1]))
		}
		if pos^1 < len(level) {
			steps = append(steps, ProofStep{
				Sibling: level[pos^1],
				Left:    pos%2 == 1,
			})
		}
		pos /= 2
		level = next
	}
	return steps
}

// VerifyProof checks a leaf digest against a root via its proof.
func VerifyProof(leaf cryptbox.Digest, proof []ProofStep, root cryptbox.Digest) bool {
	cur := leaf
	for _, step := range proof {
		if step.Left {
			cur = hashPair(step.Sibling, cur)
		} else {
			cur = hashPair(cur, step.Sibling)
		}
	}
	return cur == root
}
