package transfer

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/sim"
)

func TestPackStreamMatchesPack(t *testing.T) {
	data := payload(600 << 10)
	wantM, wantChunks, err := Pack("s", data, key(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var gotChunks [][]byte
	gotM, err := PackStream("s", bytes.NewReader(data), key(), 64<<10, func(idx int, sealed []byte) error {
		if idx != len(gotChunks) {
			t.Fatalf("emit out of order: %d", idx)
		}
		gotChunks = append(gotChunks, sealed)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotM.Size != wantM.Size || gotM.Chunks() != wantM.Chunks() || gotM.Root != wantM.Root {
		// Roots differ only through sealed bytes, which are nonce-randomized
		// in keyed mode — so compare geometry, then chunk counts.
		if gotM.Size != wantM.Size || gotM.Chunks() != wantM.Chunks() {
			t.Fatalf("stream geometry (%d, %d) != pack geometry (%d, %d)",
				gotM.Size, gotM.Chunks(), wantM.Size, wantM.Chunks())
		}
	}
	if len(gotChunks) != len(wantChunks) {
		t.Fatalf("chunks %d != %d", len(gotChunks), len(wantChunks))
	}
	// The streamed manifest must reassemble to the same payload.
	r, err := NewReceiver(gotM, key())
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range gotChunks {
		if err := r.Accept(i, c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("streamed pack did not round-trip")
	}
}

func TestUnpackStreams(t *testing.T) {
	data := payload(300 << 10)
	m, chunks, err := Pack("u", data, key(), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = Unpack(m, key(), &out, func(idx int) ([]byte, error) { return chunks[idx], nil })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("unpack mismatch")
	}
	// A flipped chunk fails at its index without touching the others.
	bad := append([]byte(nil), chunks[3]...)
	bad[5] ^= 1
	err = Unpack(m, key(), &bytes.Buffer{}, func(idx int) ([]byte, error) {
		if idx == 3 {
			return bad, nil
		}
		return chunks[idx], nil
	})
	if !errors.Is(err, ErrBadChunk) {
		t.Fatalf("err = %v, want ErrBadChunk", err)
	}
}

func TestConvergentDeterministicAndDedupable(t *testing.T) {
	data := payload(200 << 10)
	m1, c1, err := PackConvergent("a", data, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	m2, c2, err := PackConvergent("b", data, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Root != m2.Root {
		t.Fatal("convergent packs of identical content produced different roots")
	}
	for i := range c1 {
		if !bytes.Equal(c1[i], c2[i]) {
			t.Fatalf("chunk %d not bit-identical across packs (dedup broken)", i)
		}
	}
	// A shared prefix across different payloads dedups chunk-for-chunk on
	// the aligned full chunks (the trailing partial chunk differs by size).
	longer := append(append([]byte(nil), data...), payload(32<<10)...)
	_, c3, err := PackConvergent("c", longer, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data)/(32<<10); i++ {
		if !bytes.Equal(c1[i], c3[i]) {
			t.Fatalf("shared-prefix chunk %d differs", i)
		}
	}
	// Receiver needs no key for convergent manifests.
	r, err := NewReceiver(m1, cryptbox.Key{})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range c1 {
		if err := r.Accept(i, c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("convergent round trip mismatch")
	}
}

func TestConvergentChunksOpaque(t *testing.T) {
	data := bytes.Repeat([]byte("SECRET-READING"), 5000)
	_, chunks, err := PackConvergent("x", data, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if bytes.Contains(c, []byte("SECRET-READING")) {
			t.Fatal("plaintext visible in convergent chunk")
		}
	}
}

func TestConvergentManifestKeyCountEnforced(t *testing.T) {
	m, chunks, err := PackConvergent("x", payload(100<<10), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	m.Keys = m.Keys[:len(m.Keys)-1]
	if _, err := NewReceiver(m, cryptbox.Key{}); !errors.Is(err, ErrManifest) {
		t.Fatalf("short key list accepted: %v", err)
	}
	_ = chunks
}

// TestValidateRejectsForgedChunkCount mirrors the scbr codec forged-count
// fix: a manifest whose leaf count disagrees with its declared geometry is
// rejected before any chunk work happens.
func TestValidateRejectsForgedChunkCount(t *testing.T) {
	m, _, err := Pack("x", payload(100<<10), key(), 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	extra := *m
	extra.Leaves = append(append([]cryptbox.Digest(nil), m.Leaves...), cryptbox.Sum([]byte("x")))
	extra.Root = MerkleRoot(extra.Leaves)
	if err := extra.Validate(); !errors.Is(err, ErrManifest) {
		t.Fatalf("extra leaf accepted: %v", err)
	}
	short := *m
	short.Leaves = m.Leaves[:len(m.Leaves)-1]
	short.Root = MerkleRoot(short.Leaves)
	if err := short.Validate(); !errors.Is(err, ErrManifest) {
		t.Fatalf("missing leaf accepted: %v", err)
	}
	huge := *m
	huge.Size = 1 << 50 // demands millions of chunks it does not have
	if err := huge.Validate(); !errors.Is(err, ErrManifest) {
		t.Fatalf("forged size accepted: %v", err)
	}
	// The giant-chunk variant: a forged manifest cannot pair a huge Size
	// with a huge ChunkSize to keep the leaf count plausible — ChunkSize is
	// capped, which also caps what any one chunk may inflate to.
	giant := *m
	giant.Size = 1 << 50
	giant.ChunkSize = 1 << 47
	giant.Leaves = m.Leaves[:1]
	giant.Root = MerkleRoot(giant.Leaves)
	if err := giant.Validate(); !errors.Is(err, ErrManifest) {
		t.Fatalf("giant chunk size accepted: %v", err)
	}
	if _, _, err := Pack("x", []byte("data"), key(), maxInflate+1); !errors.Is(err, ErrManifest) {
		t.Fatalf("Pack accepted an oversized chunk size: %v", err)
	}
}

func TestDecodeManifestValidates(t *testing.T) {
	m, _, err := Pack("x", payload(64<<10), key(), 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != m.Root {
		t.Fatal("decode round trip lost the root")
	}
	if _, err := DecodeManifest([]byte(`{"chunk_size":-1}`)); !errors.Is(err, ErrManifest) {
		t.Fatalf("bad geometry decoded: %v", err)
	}
	if _, err := DecodeManifest([]byte(`not json`)); !errors.Is(err, ErrManifest) {
		t.Fatalf("garbage decoded: %v", err)
	}
}

// FuzzDecodeManifest guards manifest decoding against panics and forged
// geometry on attacker-controlled input (the registry serves manifests to
// pulling nodes).
func FuzzDecodeManifest(f *testing.F) {
	m, _, err := Pack("seed", []byte("seed-payload"), cryptbox.Key{}, 8)
	if err != nil {
		f.Fatal(err)
	}
	raw, _ := json.Marshal(m)
	f.Add(raw)
	f.Add([]byte(`{"name":"x","size":1152921504606846976,"chunk_size":1,"leaves":[],"root":[0]}`))
	f.Add([]byte(`{"chunk_size":0}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		// Anything that decodes must be internally consistent.
		if err := m.Validate(); err != nil {
			t.Fatalf("DecodeManifest returned an invalid manifest: %v", err)
		}
	})
}

// TestAccountedAssembleDeterministic: with accounting attached, cycle and
// fault totals are a pure function of the payload — identical whether the
// chunks arrived in order, in reverse, or with duplicates.
func TestAccountedAssembleDeterministic(t *testing.T) {
	data := payload(400 << 10)
	m, chunks, err := PackConvergent("acct", data, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	run := func(order []int) (sim.Cycles, uint64) {
		enc, arena, err := enclave.NewWorker(enclave.Config{}, 8<<20, "transfer-test")
		if err != nil {
			t.Fatal(err)
		}
		defer enc.Destroy()
		r, err := NewReceiver(m, cryptbox.Key{})
		if err != nil {
			t.Fatal(err)
		}
		r.WithAccounting(Accounting{Mem: enc.Memory(), Arena: arena})
		for _, i := range order {
			if err := r.Accept(i, chunks[i]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := r.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
		return enc.Memory().Cycles(), enc.Memory().Faults()
	}
	fwd := make([]int, len(chunks))
	rev := make([]int, 0, len(chunks)*2)
	for i := range chunks {
		fwd[i] = i
	}
	for i := len(chunks) - 1; i >= 0; i-- {
		rev = append(rev, i, i) // reverse order with duplicates
	}
	c1, f1 := run(fwd)
	c2, f2 := run(rev)
	if c1 == 0 {
		t.Fatal("accounted assemble charged no cycles")
	}
	if c1 != c2 || f1 != f2 {
		t.Fatalf("accounting depends on arrival order: (%d,%d) vs (%d,%d)", c1, f1, c2, f2)
	}
}

func TestStreamedEmptyPayload(t *testing.T) {
	m, err := PackConvergentStream("empty", bytes.NewReader(nil), 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chunks() != 1 || m.Size != 0 {
		t.Fatalf("empty payload: %d chunks, size %d", m.Chunks(), m.Size)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
