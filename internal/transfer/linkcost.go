package transfer

import "securecloud/internal/sim"

// LinkCost is the analytic cost model of one simulated network link: a
// fixed per-chunk latency plus a size-proportional transfer charge. It is
// deliberately a pure function of the chunk's byte length — never of link
// state — so concurrent fetchers can sum link charges through commutative
// atomic counters and the totals stay bit-identical across worker counts
// and chunk arrival orders (the topology-vs-execution discipline).
type LinkCost struct {
	// LatencyCycles is charged once per chunk crossing the link.
	LatencyCycles sim.Cycles
	// CyclesPerKiB is charged per started KiB of chunk payload.
	CyclesPerKiB sim.Cycles
}

// ChunkCycles returns the simulated cycles one n-byte chunk costs to cross
// the link.
func (lc LinkCost) ChunkCycles(n int) sim.Cycles {
	if n < 0 {
		n = 0
	}
	kib := sim.Cycles((n + 1023) / 1024)
	return lc.LatencyCycles + kib*lc.CyclesPerKiB
}
