package transfer

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"securecloud/internal/cryptbox"
	"securecloud/internal/sim"
)

func key() cryptbox.Key {
	var k cryptbox.Key
	k[7] = 0x7A
	return k
}

// payload generates compressible-but-not-trivial test data.
func payload(n int) []byte {
	rng := sim.NewRand(9)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte('a' + rng.Intn(16))
	}
	return out
}

func TestPackReceiveRoundTrip(t *testing.T) {
	data := payload(1 << 20)
	m, chunks, err := Pack("meters.tar", data, key(), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chunks() != 16 {
		t.Fatalf("chunks = %d, want 16", m.Chunks())
	}
	r, err := NewReceiver(m, key())
	if err != nil {
		t.Fatal(err)
	}
	// Deliver out of order.
	for i := len(chunks) - 1; i >= 0; i-- {
		if err := r.Accept(i, chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	data := bytes.Repeat([]byte("meter-00042,1.234,229.8\n"), 10000)
	_, chunks, err := Pack("readings.csv", data, key(), 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	if total >= len(data)/2 {
		t.Fatalf("compressed size %d not < half of %d", total, len(data))
	}
}

func TestChunksOpaque(t *testing.T) {
	data := bytes.Repeat([]byte("SECRET-READING"), 5000)
	_, chunks, err := Pack("x", data, key(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if bytes.Contains(c, []byte("SECRET-READING")) {
			t.Fatal("plaintext visible in transfer chunk")
		}
	}
}

func TestTamperedChunkRejectedOnAccept(t *testing.T) {
	m, chunks, _ := Pack("x", payload(300<<10), key(), 64<<10)
	r, _ := NewReceiver(m, key())
	bad := append([]byte(nil), chunks[2]...)
	bad[10] ^= 1
	if err := r.Accept(2, bad); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("err = %v, want ErrBadChunk", err)
	}
}

func TestChunkIndexSwapRejected(t *testing.T) {
	m, chunks, _ := Pack("x", payload(300<<10), key(), 64<<10)
	r, _ := NewReceiver(m, key())
	if err := r.Accept(0, chunks[1]); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("chunk delivered under wrong index accepted: %v", err)
	}
}

func TestOutOfRangeIndex(t *testing.T) {
	m, chunks, _ := Pack("x", payload(1000), key(), 512)
	r, _ := NewReceiver(m, key())
	if err := r.Accept(99, chunks[0]); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("err = %v", err)
	}
	if err := r.Accept(-1, chunks[0]); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("err = %v", err)
	}
}

func TestResumeAfterInterruption(t *testing.T) {
	m, chunks, _ := Pack("x", payload(640<<10), key(), 64<<10)
	r, _ := NewReceiver(m, key())
	// First session delivers even chunks only.
	for i := 0; i < len(chunks); i += 2 {
		if err := r.Accept(i, chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if r.Complete() {
		t.Fatal("complete with half the chunks")
	}
	missing := r.Missing()
	if len(missing) != len(chunks)/2 {
		t.Fatalf("missing %d, want %d", len(missing), len(chunks)/2)
	}
	if _, err := r.Assemble(); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("assemble incomplete: %v", err)
	}
	// Resume: deliver exactly what is missing.
	for _, i := range missing {
		if err := r.Accept(i, chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !r.Complete() {
		t.Fatal("not complete after resume")
	}
	if _, err := r.Assemble(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateDeliveryIdempotent(t *testing.T) {
	m, chunks, _ := Pack("x", payload(2048), key(), 1024)
	r, _ := NewReceiver(m, key())
	for i := 0; i < 3; i++ {
		if err := r.Accept(0, chunks[0]); err != nil {
			t.Fatal(err)
		}
	}
	if len(r.Missing()) != len(chunks)-1 {
		t.Fatal("duplicate delivery corrupted progress tracking")
	}
}

func TestForgedManifestRejected(t *testing.T) {
	m, _, _ := Pack("x", payload(4096), key(), 1024)
	m.Leaves[0][0] ^= 1 // leaves no longer match root
	if _, err := NewReceiver(m, key()); !errors.Is(err, ErrManifest) {
		t.Fatalf("err = %v, want ErrManifest", err)
	}
}

func TestWrongKeyFailsAtAssemble(t *testing.T) {
	m, chunks, _ := Pack("x", payload(2048), key(), 1024)
	var wrong cryptbox.Key
	wrong[0] = 0xDD
	r, err := NewReceiver(m, wrong)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range chunks {
		if err := r.Accept(i, c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Assemble(); !errors.Is(err, ErrBadChunk) {
		t.Fatalf("err = %v, want ErrBadChunk", err)
	}
}

func TestEmptyPayload(t *testing.T) {
	m, chunks, err := Pack("empty", nil, key(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReceiver(m, key())
	for i, c := range chunks {
		if err := r.Accept(i, c); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload assembled to %d bytes", len(got))
	}
}

func TestMerkleRootProperties(t *testing.T) {
	mk := func(vals ...byte) []cryptbox.Digest {
		var out []cryptbox.Digest
		for _, v := range vals {
			out = append(out, cryptbox.Sum([]byte{v}))
		}
		return out
	}
	if MerkleRoot(mk(1, 2)) == MerkleRoot(mk(2, 1)) {
		t.Fatal("root ignores leaf order")
	}
	if MerkleRoot(mk(1, 2, 3)) == MerkleRoot(mk(1, 2)) {
		t.Fatal("root ignores extra leaf")
	}
	if MerkleRoot(mk(1)) != MerkleRoot(mk(1)) {
		t.Fatal("root not deterministic")
	}
	if MerkleRoot(nil) == (cryptbox.Digest{}) {
		t.Fatal("empty root is zero digest")
	}
}

func TestPropMerkleProofs(t *testing.T) {
	f := func(seed int64, nLeaves uint8) bool {
		n := int(nLeaves%31) + 1
		rng := sim.NewRand(seed)
		leaves := make([]cryptbox.Digest, n)
		for i := range leaves {
			var b [8]byte
			rng.Read(b[:])
			leaves[i] = cryptbox.Sum(b[:])
		}
		root := MerkleRoot(leaves)
		for idx := 0; idx < n; idx++ {
			proof := Proof(leaves, idx)
			if !VerifyProof(leaves[idx], proof, root) {
				return false
			}
			// A different leaf must not verify with this proof.
			var other cryptbox.Digest
			other[0] = ^leaves[idx][0]
			if VerifyProof(other, proof, root) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPackAssembleRoundTrip(t *testing.T) {
	f := func(data []byte, chunkPow uint8) bool {
		cs := 64 << (chunkPow % 6) // 64..2048
		m, chunks, err := Pack("p", data, key(), cs)
		if err != nil {
			return false
		}
		r, err := NewReceiver(m, key())
		if err != nil {
			return false
		}
		for i, c := range chunks {
			if err := r.Accept(i, c); err != nil {
				return false
			}
		}
		got, err := r.Assemble()
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
