// Package transfer implements SecureCloud's component for the "efficient
// transmission of large amounts of data" (paper §III-B(3)): bulk payloads
// — meter archives, model files, map/reduce inputs — are cut into chunks,
// compressed, encrypted, and authenticated under a Merkle tree, so they
// can cross untrusted networks and storage out of order, resume after
// interruption, and be verified chunk-by-chunk without trusting the
// transport.
package transfer

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sort"

	"securecloud/internal/cryptbox"
)

// DefaultChunkSize balances per-chunk overhead against retransmission
// granularity.
const DefaultChunkSize = 256 << 10

// Errors reported by the transfer layer.
var (
	ErrBadChunk   = errors.New("transfer: chunk failed verification")
	ErrIncomplete = errors.New("transfer: chunks missing")
	ErrManifest   = errors.New("transfer: manifest inconsistent")
)

// Manifest describes one packed payload: the trusted summary exchanged
// over a small authenticated channel (e.g. inside an SCF or a micro-
// service request), while the bulk chunks travel any untrusted way.
type Manifest struct {
	Name      string            `json:"name"`
	Size      int64             `json:"size"`
	ChunkSize int               `json:"chunk_size"`
	Leaves    []cryptbox.Digest `json:"leaves"`
	Root      cryptbox.Digest   `json:"root"`
}

// Chunks returns the number of chunks.
func (m *Manifest) Chunks() int { return len(m.Leaves) }

// Validate checks the manifest's internal consistency (root over leaves).
func (m *Manifest) Validate() error {
	if m.ChunkSize <= 0 || m.Size < 0 {
		return fmt.Errorf("%w: bad geometry", ErrManifest)
	}
	if MerkleRoot(m.Leaves) != m.Root {
		return fmt.Errorf("%w: root does not match leaves", ErrManifest)
	}
	return nil
}

// chunkAAD binds a ciphertext chunk to the payload and position.
func chunkAAD(name string, idx int) []byte {
	return []byte(fmt.Sprintf("transfer|%s|%d", name, idx))
}

// Pack compresses, encrypts and hashes data into transferable chunks plus
// the manifest the receiver needs.
func Pack(name string, data []byte, key cryptbox.Key, chunkSize int) (*Manifest, [][]byte, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, nil, err
	}
	total := (len(data) + chunkSize - 1) / chunkSize
	if total == 0 {
		total = 1
	}
	m := &Manifest{Name: name, Size: int64(len(data)), ChunkSize: chunkSize}
	chunks := make([][]byte, 0, total)
	for i := 0; i < total; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(data) {
			hi = len(data)
		}
		compressed, err := deflate(data[lo:hi])
		if err != nil {
			return nil, nil, err
		}
		sealed, err := box.Seal(compressed, chunkAAD(name, i))
		if err != nil {
			return nil, nil, err
		}
		chunks = append(chunks, sealed)
		m.Leaves = append(m.Leaves, cryptbox.Sum(sealed))
	}
	m.Root = MerkleRoot(m.Leaves)
	return m, chunks, nil
}

// Receiver reassembles a payload from chunks arriving in any order,
// verifying each against the manifest on arrival.
type Receiver struct {
	manifest *Manifest
	box      *cryptbox.Box
	got      map[int][]byte
}

// NewReceiver builds a receiver for a validated manifest.
func NewReceiver(m *Manifest, key cryptbox.Key) (*Receiver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return &Receiver{manifest: m, box: box, got: make(map[int][]byte)}, nil
}

// Accept verifies and stores one chunk. Duplicate deliveries of the same
// valid chunk are idempotent.
func (r *Receiver) Accept(idx int, chunk []byte) error {
	if idx < 0 || idx >= r.manifest.Chunks() {
		return fmt.Errorf("%w: index %d of %d", ErrBadChunk, idx, r.manifest.Chunks())
	}
	if cryptbox.Sum(chunk) != r.manifest.Leaves[idx] {
		return fmt.Errorf("%w: leaf digest mismatch at %d", ErrBadChunk, idx)
	}
	r.got[idx] = append([]byte(nil), chunk...)
	return nil
}

// Missing lists the chunk indexes still outstanding, ascending — the
// resume request after an interrupted transfer.
func (r *Receiver) Missing() []int {
	var out []int
	for i := 0; i < r.manifest.Chunks(); i++ {
		if _, ok := r.got[i]; !ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Complete reports whether all chunks arrived.
func (r *Receiver) Complete() bool { return len(r.got) == r.manifest.Chunks() }

// Assemble decrypts, decompresses and concatenates the payload.
func (r *Receiver) Assemble() ([]byte, error) {
	if !r.Complete() {
		return nil, fmt.Errorf("%w: %d of %d", ErrIncomplete, len(r.got), r.manifest.Chunks())
	}
	out := make([]byte, 0, r.manifest.Size)
	for i := 0; i < r.manifest.Chunks(); i++ {
		compressed, err := r.box.Open(r.got[i], chunkAAD(r.manifest.Name, i))
		if err != nil {
			return nil, fmt.Errorf("%w: decrypting %d", ErrBadChunk, i)
		}
		plain, err := inflate(compressed)
		if err != nil {
			return nil, fmt.Errorf("transfer: inflating chunk %d: %w", i, err)
		}
		out = append(out, plain...)
	}
	if int64(len(out)) != r.manifest.Size {
		return nil, fmt.Errorf("%w: assembled %d bytes, manifest says %d",
			ErrManifest, len(out), r.manifest.Size)
	}
	return out, nil
}

func deflate(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func inflate(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	return io.ReadAll(io.LimitReader(r, 64<<20))
}
