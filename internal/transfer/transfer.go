// Package transfer implements SecureCloud's component for the "efficient
// transmission of large amounts of data" (paper §III-B(3)): bulk payloads
// — meter archives, model files, map/reduce inputs, container image layers
// — are cut into chunks, compressed, encrypted, and authenticated under a
// Merkle tree, so they can cross untrusted networks and storage out of
// order, resume after interruption, and be verified chunk-by-chunk without
// trusting the transport.
//
// The package is the chunk substrate of the content-addressed data plane:
// the registry and container layers store and move sealed chunks keyed by
// their content digest. Two sealing modes exist:
//
//   - Keyed (Pack/PackStream): every chunk is sealed under one caller key
//     with a position-binding AAD. Use for point-to-point transfers where
//     both ends share a key.
//   - Convergent (PackConvergent/PackConvergentStream): every chunk is
//     sealed under a key derived from its own compressed plaintext with a
//     deterministic nonce, and the per-chunk keys ride in the manifest.
//     Identical content always produces identical sealed bytes, so a
//     content-addressed store deduplicates chunks across payloads.
//     Confidentiality-wise this is exactly convergent encryption: a store
//     that holds only chunks cannot read content it does not already
//     know, and nothing more — whoever holds the manifest holds the keys.
//     The image registry stores manifests next to chunks (it ingests
//     plaintext layers on push anyway); there, secret content is
//     protected one level down by fsshield, per the paper's model, and
//     convergent sealing is purely the dedup mechanism. Position binding
//     comes from the manifest's leaf list, not the AAD.
//
// Reassembly can be routed through the simulated SGX memory hierarchy via
// Receiver.WithAccounting, mirroring fsshield and kvstore: the enclave-side
// staging, verification and decompressed output of every chunk are charged
// to an enclave.Memory in chunk-index order, so totals are deterministic
// regardless of chunk arrival order or host parallelism.
package transfer

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// DefaultChunkSize balances per-chunk overhead against retransmission
// granularity.
const DefaultChunkSize = 256 << 10

// maxInflate bounds a single chunk's decompressed size against zip bombs.
const maxInflate = 64 << 20

// Errors reported by the transfer layer.
var (
	ErrBadChunk   = errors.New("transfer: chunk failed verification")
	ErrIncomplete = errors.New("transfer: chunks missing")
	ErrManifest   = errors.New("transfer: manifest inconsistent")
)

// Manifest describes one packed payload: the trusted summary exchanged
// over a small authenticated channel (e.g. inside an SCF, a micro-service
// request, or a signed image manifest), while the bulk chunks travel any
// untrusted way.
type Manifest struct {
	Name      string            `json:"name"`
	Size      int64             `json:"size"`
	ChunkSize int               `json:"chunk_size"`
	Leaves    []cryptbox.Digest `json:"leaves"`
	Root      cryptbox.Digest   `json:"root"`
	// Keys holds the per-chunk convergent keys (PackConvergent). Empty for
	// keyed payloads. Whoever holds the manifest can decrypt — by design:
	// the manifest is the trusted summary, the chunk store is not.
	Keys []cryptbox.Key `json:"keys,omitempty"`
}

// Chunks returns the number of chunks.
func (m *Manifest) Chunks() int { return len(m.Leaves) }

// Convergent reports whether the payload was packed convergently.
func (m *Manifest) Convergent() bool { return len(m.Keys) > 0 }

// Validate checks the manifest's internal consistency: the root over the
// leaves, and — mirroring the scbr codec's forged-count fix — that the leaf
// count is exactly what the declared geometry implies, so a forged manifest
// cannot demand absurd chunk counts or smuggle extra leaves. ChunkSize is
// capped at maxInflate, which (with the per-chunk plaintext bound enforced
// on open) keeps a forged Size from driving unbounded allocations.
func (m *Manifest) Validate() error {
	if m.ChunkSize <= 0 || m.ChunkSize > maxInflate || m.Size < 0 {
		return fmt.Errorf("%w: bad geometry", ErrManifest)
	}
	want := int((m.Size + int64(m.ChunkSize) - 1) / int64(m.ChunkSize))
	if want == 0 {
		want = 1
	}
	if len(m.Leaves) != want {
		return fmt.Errorf("%w: %d leaves for %d bytes at chunk size %d (want %d)",
			ErrManifest, len(m.Leaves), m.Size, m.ChunkSize, want)
	}
	if len(m.Keys) != 0 && len(m.Keys) != len(m.Leaves) {
		return fmt.Errorf("%w: %d keys for %d leaves", ErrManifest, len(m.Keys), len(m.Leaves))
	}
	if MerkleRoot(m.Leaves) != m.Root {
		return fmt.Errorf("%w: root does not match leaves", ErrManifest)
	}
	return nil
}

// DecodeManifest parses and validates a serialized manifest. Use it on any
// manifest crossing a trust boundary: a manifest that fails validation is
// rejected before a single chunk allocation happens.
func DecodeManifest(b []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// chunkAAD binds a keyed ciphertext chunk to the payload and position.
func chunkAAD(name string, idx int) []byte {
	return []byte(fmt.Sprintf("transfer|%s|%d", name, idx))
}

// convergentAAD is position-independent: convergent chunks must depend on
// nothing but their content (dedup), so position binding is delegated to
// the manifest leaf list, which Accept and Unpack enforce.
var convergentAAD = []byte("transfer|convergent")

// convergentSeal seals one compressed chunk under a key derived from its
// own bytes with a deterministic nonce: same content, same sealed bytes.
// Reusing a (key, nonce) pair is safe exactly because it can only recur
// for the identical plaintext, reproducing the identical ciphertext.
func convergentSeal(compressed []byte) (cryptbox.Key, []byte, error) {
	d := cryptbox.Sum(compressed)
	raw, err := cryptbox.HKDF(d[:], nil, []byte("transfer-convergent-key"), cryptbox.KeySize)
	if err != nil {
		return cryptbox.Key{}, nil, err
	}
	key, err := cryptbox.KeyFromBytes(raw)
	if err != nil {
		return cryptbox.Key{}, nil, err
	}
	nonce := cryptbox.Sum(append(d[:], []byte("transfer-convergent-nonce")...))
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return cryptbox.Key{}, nil, err
	}
	box.SetNonceSource(bytes.NewReader(nonce[:cryptbox.NonceSize]))
	sealed, err := box.Seal(compressed, convergentAAD)
	if err != nil {
		return cryptbox.Key{}, nil, err
	}
	return key, sealed, nil
}

// SealConvergent compresses and convergently seals one standalone payload
// through the pooled deflate path: the returned key is derived from the
// compressed content and the nonce is deterministic, so identical payloads
// produce bit-identical sealed bytes (the dedup property PackConvergent
// gives chunked payloads, exposed here for single-record callers like the
// kvstore write-ahead log). The caller is responsible for carrying the key
// over an authenticated channel and for position binding.
func SealConvergent(payload []byte) (cryptbox.Key, []byte, error) {
	compressed, err := deflate(payload)
	if err != nil {
		return cryptbox.Key{}, nil, err
	}
	return convergentSeal(compressed)
}

// OpenConvergent reverses SealConvergent. limit bounds the decompressed
// size (≤ 0 applies the package-wide maxInflate zip-bomb bound).
func OpenConvergent(key cryptbox.Key, sealed []byte, limit int) ([]byte, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	compressed, err := box.Open(sealed, convergentAAD)
	if err != nil {
		return nil, fmt.Errorf("%w: convergent payload failed authentication", ErrBadChunk)
	}
	if limit <= 0 || limit > maxInflate {
		limit = maxInflate
	}
	return inflate(compressed, limit)
}

// ChunkFunc consumes sealed chunks in index order during a streaming pack.
type ChunkFunc func(idx int, sealed []byte) error

// PackStream reads the payload from r in chunkSize pieces, compressing,
// sealing under key and emitting each chunk in index order, and returns
// the manifest. Only one chunk's plaintext is resident at a time, so
// payloads larger than memory stream through.
func PackStream(name string, r io.Reader, key cryptbox.Key, chunkSize int, emit ChunkFunc) (*Manifest, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return packStream(name, r, chunkSize, false, func(idx int, compressed []byte) (cryptbox.Key, []byte, error) {
		sealed, err := box.Seal(compressed, chunkAAD(name, idx))
		return cryptbox.Key{}, sealed, err
	}, emit)
}

// PackConvergentStream is PackStream with convergent sealing: the manifest
// carries one derived key per chunk, and identical chunk content yields
// bit-identical sealed chunks for content-addressed dedup.
func PackConvergentStream(name string, r io.Reader, chunkSize int, emit ChunkFunc) (*Manifest, error) {
	return packStream(name, r, chunkSize, true, func(_ int, compressed []byte) (cryptbox.Key, []byte, error) {
		return convergentSeal(compressed)
	}, emit)
}

func packStream(name string, r io.Reader, chunkSize int, convergent bool,
	seal func(idx int, compressed []byte) (cryptbox.Key, []byte, error), emit ChunkFunc) (*Manifest, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > maxInflate {
		return nil, fmt.Errorf("%w: chunk size %d exceeds %d", ErrManifest, chunkSize, maxInflate)
	}
	m := &Manifest{Name: name, ChunkSize: chunkSize}
	buf := make([]byte, chunkSize)
	for idx := 0; ; idx++ {
		n, err := io.ReadFull(r, buf)
		if err == io.EOF && idx > 0 {
			break
		}
		if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("transfer: reading payload: %w", err)
		}
		compressed, cerr := deflate(buf[:n])
		if cerr != nil {
			return nil, cerr
		}
		key, sealed, serr := seal(idx, compressed)
		if serr != nil {
			return nil, serr
		}
		if convergent {
			m.Keys = append(m.Keys, key)
		}
		m.Size += int64(n)
		m.Leaves = append(m.Leaves, cryptbox.Sum(sealed))
		if emit != nil {
			if err := emit(idx, sealed); err != nil {
				return nil, err
			}
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
	}
	m.Root = MerkleRoot(m.Leaves)
	return m, nil
}

// Pack compresses, encrypts and hashes data into transferable chunks plus
// the manifest the receiver needs.
func Pack(name string, data []byte, key cryptbox.Key, chunkSize int) (*Manifest, [][]byte, error) {
	return collect(func(emit ChunkFunc) (*Manifest, error) {
		return PackStream(name, bytes.NewReader(data), key, chunkSize, emit)
	})
}

// PackConvergent is Pack with convergent sealing (see the package comment):
// the chunk bytes depend only on the content, enabling cross-payload dedup
// in a content-addressed store, and the per-chunk keys ride in the manifest.
func PackConvergent(name string, data []byte, chunkSize int) (*Manifest, [][]byte, error) {
	return collect(func(emit ChunkFunc) (*Manifest, error) {
		return PackConvergentStream(name, bytes.NewReader(data), chunkSize, emit)
	})
}

func collect(pack func(ChunkFunc) (*Manifest, error)) (*Manifest, [][]byte, error) {
	var chunks [][]byte
	m, err := pack(func(_ int, sealed []byte) error {
		chunks = append(chunks, sealed)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return m, chunks, nil
}

// Accounting wires reassembly to the simulated SGX memory hierarchy, like
// fsshield and kvstore: a zero Accounting leaves the receiver unaccounted.
type Accounting = enclave.Accounting

// Unpack streams the verified payload into w in chunk-index order, fetching
// each sealed chunk on demand. Every chunk is checked against the manifest
// leaf before decryption; any mismatch aborts with ErrBadChunk naming the
// index. key is ignored for convergent manifests.
func Unpack(m *Manifest, key cryptbox.Key, w io.Writer, fetch func(idx int) ([]byte, error)) error {
	if err := m.Validate(); err != nil {
		return err
	}
	op, err := newOpener(m, key)
	if err != nil {
		return err
	}
	var total int64
	for i := 0; i < m.Chunks(); i++ {
		sealed, err := fetch(i)
		if err != nil {
			return fmt.Errorf("transfer: fetching chunk %d: %w", i, err)
		}
		plain, err := op.open(i, sealed)
		if err != nil {
			return err
		}
		if _, err := w.Write(plain); err != nil {
			return err
		}
		total += int64(len(plain))
	}
	if total != m.Size {
		return fmt.Errorf("%w: assembled %d bytes, manifest says %d", ErrManifest, total, m.Size)
	}
	return nil
}

// opener verifies, decrypts and decompresses single chunks for one
// manifest, resolving the keyed-vs-convergent mode once.
type opener struct {
	m   *Manifest
	box *cryptbox.Box // keyed mode only
}

func newOpener(m *Manifest, key cryptbox.Key) (*opener, error) {
	op := &opener{m: m}
	if !m.Convergent() {
		box, err := cryptbox.NewBox(key)
		if err != nil {
			return nil, err
		}
		op.box = box
	}
	return op, nil
}

func (op *opener) open(idx int, sealed []byte) ([]byte, error) {
	if cryptbox.Sum(sealed) != op.m.Leaves[idx] {
		return nil, fmt.Errorf("%w: leaf digest mismatch at %d", ErrBadChunk, idx)
	}
	var compressed []byte
	var err error
	if op.m.Convergent() {
		box, berr := cryptbox.NewBox(op.m.Keys[idx])
		if berr != nil {
			return nil, berr
		}
		compressed, err = box.Open(sealed, convergentAAD)
	} else {
		compressed, err = op.box.Open(sealed, chunkAAD(op.m.Name, idx))
	}
	if err != nil {
		return nil, fmt.Errorf("%w: decrypting %d", ErrBadChunk, idx)
	}
	plain, err := inflate(compressed, op.m.ChunkSize)
	if err != nil {
		return nil, fmt.Errorf("transfer: inflating chunk %d: %w", idx, err)
	}
	return plain, nil
}

// Receiver reassembles a payload from chunks arriving in any order,
// verifying each against the manifest on arrival.
type Receiver struct {
	manifest *Manifest
	key      cryptbox.Key
	got      map[int][]byte
	acct     Accounting
}

// NewReceiver builds a receiver for a validated manifest. For convergent
// manifests the key is ignored (pass the zero key).
func NewReceiver(m *Manifest, key cryptbox.Key) (*Receiver, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Receiver{manifest: m, key: key, got: make(map[int][]byte)}, nil
}

// WithAccounting routes this receiver's reassembly through the simulated
// memory hierarchy: Assemble charges each chunk's staged ciphertext (write
// + verify read) and decompressed output in chunk-index order, so cycle
// and fault totals are a pure function of the payload — independent of the
// order chunks arrived in. Call before Assemble.
func (r *Receiver) WithAccounting(acct Accounting) *Receiver {
	r.acct = acct
	return r
}

// Accept verifies and stores one chunk. Duplicate deliveries of the same
// valid chunk are idempotent.
func (r *Receiver) Accept(idx int, chunk []byte) error {
	if idx < 0 || idx >= r.manifest.Chunks() {
		return fmt.Errorf("%w: index %d of %d", ErrBadChunk, idx, r.manifest.Chunks())
	}
	if cryptbox.Sum(chunk) != r.manifest.Leaves[idx] {
		return fmt.Errorf("%w: leaf digest mismatch at %d", ErrBadChunk, idx)
	}
	r.got[idx] = append([]byte(nil), chunk...)
	return nil
}

// Missing lists the chunk indexes still outstanding, ascending — the
// resume request after an interrupted transfer.
func (r *Receiver) Missing() []int {
	var out []int
	for i := 0; i < r.manifest.Chunks(); i++ {
		if _, ok := r.got[i]; !ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Complete reports whether all chunks arrived.
func (r *Receiver) Complete() bool { return len(r.got) == r.manifest.Chunks() }

// Assemble decrypts, decompresses and concatenates the payload.
func (r *Receiver) Assemble() ([]byte, error) {
	if !r.Complete() {
		return nil, fmt.Errorf("%w: %d of %d", ErrIncomplete, len(r.got), r.manifest.Chunks())
	}
	op, err := newOpener(r.manifest, r.key)
	if err != nil {
		return nil, err
	}
	var outAddr uint64
	accounted := r.acct.Enabled()
	if accounted {
		outSize := int(r.manifest.Size)
		if outSize == 0 {
			outSize = 1
		}
		outAddr = r.acct.Arena.Alloc(outSize)
	}
	// Cap the upfront reservation: a forged Size must not reserve memory
	// the (digest-verified) chunks never deliver; growth beyond the cap is
	// paid only as real data decompresses.
	prealloc := r.manifest.Size
	if prealloc > 16<<20 {
		prealloc = 16 << 20
	}
	out := make([]byte, 0, prealloc)
	for i := 0; i < r.manifest.Chunks(); i++ {
		stored := r.got[i]
		if accounted {
			// Stage the ciphertext into the enclave, then read it back for
			// verification and decryption.
			addr := r.acct.Arena.Alloc(len(stored))
			r.acct.Mem.AccessRange(addr, len(stored), true)
			r.acct.Mem.AccessRange(addr, len(stored), false)
		}
		plain, err := op.open(i, stored)
		if err != nil {
			return nil, err
		}
		if accounted && len(plain) > 0 {
			r.acct.Mem.AccessRange(outAddr+uint64(len(out)), len(plain), true)
		}
		out = append(out, plain...)
	}
	if int64(len(out)) != r.manifest.Size {
		return nil, fmt.Errorf("%w: assembled %d bytes, manifest says %d",
			ErrManifest, len(out), r.manifest.Size)
	}
	return out, nil
}

// deflaterPool and inflaterPool recycle the compressor state machines —
// a flate.Writer is ~600 KiB of window and hash tables, far too heavy to
// allocate per chunk on the data-plane hot path.
var deflaterPool = sync.Pool{New: func() any {
	w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		panic("transfer: flate.NewWriter(BestSpeed) cannot fail: " + err.Error())
	}
	return w
}}

var inflaterPool = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

func deflate(data []byte) ([]byte, error) {
	w := deflaterPool.Get().(*flate.Writer)
	defer deflaterPool.Put(w)
	var buf bytes.Buffer
	buf.Grow(len(data)/2 + 64)
	w.Reset(&buf)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// inflate decompresses one chunk, rejecting output beyond limit (a chunk's
// plaintext can never legitimately exceed the manifest's ChunkSize, so
// anything larger is forged — erroring beats silent truncation, which
// would surface as a confusing manifest-inconsistency later).
func inflate(data []byte, limit int) ([]byte, error) {
	r := inflaterPool.Get().(io.ReadCloser)
	defer inflaterPool.Put(r)
	if err := r.(flate.Resetter).Reset(bytes.NewReader(data), nil); err != nil {
		return nil, err
	}
	out, err := io.ReadAll(io.LimitReader(r, int64(limit)+1))
	if err != nil {
		return nil, err
	}
	if len(out) > limit {
		return nil, fmt.Errorf("%w: chunk inflates past %d bytes", ErrBadChunk, limit)
	}
	return out, r.Close()
}
