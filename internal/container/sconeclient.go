package container

import (
	"crypto/ed25519"
	"fmt"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/fsshield"
	"securecloud/internal/image"
	"securecloud/internal/sconert"
	"securecloud/internal/shield"
)

// SCONEClient is the wrapper around the Docker client described in §V-A:
// it builds protected images, registers their SCFs with the CAS, spawns
// secure containers and communicates with them over encrypted streams. It
// runs in the image owner's trusted environment; nothing it holds ever
// reaches the cloud in plaintext.
type SCONEClient struct {
	signKey ed25519.PrivateKey
	cas     *sconert.CAS
}

// NewSCONEClient builds a client signing with priv and provisioning SCFs
// through cas.
func NewSCONEClient(priv ed25519.PrivateKey, cas *sconert.CAS) *SCONEClient {
	return &SCONEClient{signKey: priv, cas: cas}
}

// ErrEntrypointEncrypted is returned when a build tries to encrypt the
// entrypoint: enclave code must stay measurable by SGX at load time, which
// is why SCONE statically links and never hides the executable (only
// integrity protection is possible there).
var ErrEntrypointEncrypted = fmt.Errorf("container: %s cannot use ModeEncrypted (code must be measurable)", EntrypointPath)

// BuildSecure converts a plain image into a secure image and returns it
// with its build secrets. The caller picks which paths get which mode.
func (c *SCONEClient) BuildSecure(plain *image.Image, protect map[string]fsshield.Mode) (*image.Image, *image.BuildSecrets, error) {
	if m, ok := protect[EntrypointPath]; ok && m == fsshield.ModeEncrypted {
		return nil, nil, ErrEntrypointEncrypted
	}
	rootKey, err := cryptbox.NewRandomKey()
	if err != nil {
		return nil, nil, err
	}
	return image.SecureBuild(plain, image.SecureBuildSpec{Protect: protect, RootKey: rootKey}, c.signKey)
}

// Deploy registers the SCF for a secure image with the CAS (bound to the
// image's expected measurement) and returns the SCF for later secure
// communication with the container. Push the image to the registry
// separately; the registry never sees the SCF.
func (c *SCONEClient) Deploy(img *image.Image, secrets *image.BuildSecrets, args []string, env map[string]string) (sconert.SCF, error) {
	m, err := ExpectedMeasurement(img)
	if err != nil {
		return sconert.SCF{}, err
	}
	scf, err := sconert.NewSCF(secrets.ProtectionFileKey, secrets.ProtectionFileHash, args, env)
	if err != nil {
		return sconert.SCF{}, err
	}
	c.cas.Register(attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, scf)
	return scf, nil
}

// ReadStdout decrypts a container's stdout records from the untrusted host
// using the deployer's copy of the SCF. This is the "secure communication
// with containers" arrow of Figure 2.
func ReadStdout(host *shield.Host, scf sconert.SCF) ([][]byte, error) {
	recs := host.Records("stdio/stdout")
	out := make([][]byte, 0, len(recs))
	for seq, rec := range recs {
		plain, err := shield.OpenRecord(scf.StdoutKey, "stdio/stdout", uint64(seq), rec)
		if err != nil {
			return nil, err
		}
		out = append(out, plain)
	}
	return out, nil
}
