// The chunk-granular verified pull: the container engine's side of the
// content-addressed sealed data plane. Where Registry.Pull reassembles a
// whole image inside the registry process, PullImage drives the pull from
// the node: it fetches the (untrusted) image and layer manifests, fans the
// unique chunk set out across workers, verifies every chunk against its
// content digest before it may enter the node-local BlobCache, and then
// reconstructs each layer inside a per-layer verification enclave whose
// simulated cycles are charged through the transfer receiver.
//
// Topology vs execution: the chunk set, dedup and cache classification,
// and the per-layer enclaves are topology — pure functions of the image
// and the cache state. The worker count is execution only: it decides
// which goroutine fetches which chunk and assembles which layer, never
// what is fetched or charged. All PullStats fields are therefore
// bit-identical across worker counts.
package container

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/image"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

// ErrChunkVerify marks a chunk whose bytes do not match their digest — a
// tampering or corrupting source. The chunk is rejected before it can
// reach the cache.
var ErrChunkVerify = errors.New("container: chunk failed digest verification")

// PullSource is the chunk-granular pull surface. Both the in-process
// registry and its HTTP client implement it.
type PullSource interface {
	// Manifest returns an image manifest. The puller verifies its
	// signature as part of image verification.
	Manifest(name, tag string) (image.Manifest, error)
	// LayerManifest returns the chunk manifest of one layer digest.
	LayerManifest(d cryptbox.Digest) (*transfer.Manifest, error)
	// Blob returns one sealed chunk by content digest.
	Blob(d cryptbox.Digest) ([]byte, error)
}

// BlobCacheStats are the cache's lifetime counters.
type BlobCacheStats struct {
	Hits   uint64 // pull classifications served from cache
	Misses uint64 // pull classifications that had to fetch
	Stores uint64 // verified chunks inserted
	Blobs  int
	Bytes  int64
}

// BlobCache is a node-local content-addressed chunk cache shared by the
// container engines on one node: the Nth replica of an image boots without
// refetching a single chunk. Only digest-verified chunks enter it, so the
// cache cannot be poisoned — a digest can never map to wrong bytes.
type BlobCache struct {
	mu     sync.RWMutex
	blobs  map[cryptbox.Digest][]byte
	bytes  int64
	hits   uint64
	misses uint64
	stores uint64
}

// NewBlobCache returns an empty cache.
func NewBlobCache() *BlobCache {
	return &BlobCache{blobs: make(map[cryptbox.Digest][]byte)}
}

// Lookup reports whether the cache holds d, counting a hit or miss. It is
// the classification step of a pull.
func (c *BlobCache) Lookup(d cryptbox.Digest) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.blobs[d]; ok {
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Put inserts a chunk after verifying it against its digest. Returns false
// (and stores nothing) when the bytes do not match — the poisoning guard.
func (c *BlobCache) Put(d cryptbox.Digest, chunk []byte) bool {
	if cryptbox.Sum(chunk) != d {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.blobs[d]; ok {
		return true
	}
	c.blobs[d] = append([]byte(nil), chunk...)
	c.bytes += int64(len(chunk))
	c.stores++
	return true
}

// peek returns a cached chunk without touching the hit/miss counters (the
// assembly phase re-reads chunks the classification already accounted).
func (c *BlobCache) peek(d cryptbox.Digest) ([]byte, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.blobs[d]
	return b, ok
}

// Contains reports whether the cache holds d without touching the hit/miss
// counters — the placement layer's warm-chunk probe (scoring a candidate
// node must not perturb its pull accounting).
func (c *BlobCache) Contains(d cryptbox.Digest) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.blobs[d]
	return ok
}

// Audit re-verifies every cached chunk against its digest and returns the
// number of mismatches. Put verifies before storing, so a nonzero count
// means the poisoning guard itself is broken — the bench gate pins this
// to zero for the byzantine-registry scenario.
func (c *BlobCache) Audit() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	bad := 0
	for d, b := range c.blobs {
		if cryptbox.Sum(b) != d {
			bad++
		}
	}
	return bad
}

// Stats returns the cache counters.
func (c *BlobCache) Stats() BlobCacheStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return BlobCacheStats{
		Hits: c.hits, Misses: c.misses, Stores: c.stores,
		Blobs: len(c.blobs), Bytes: c.bytes,
	}
}

// StatsName implements stats.Source.
func (c *BlobCache) StatsName() string { return "blobcache" }

// Snapshot implements stats.Source.
func (c *BlobCache) Snapshot() map[string]float64 {
	s := c.Stats()
	return map[string]float64{
		"hits":   float64(s.Hits),
		"misses": float64(s.Misses),
		"stores": float64(s.Stores),
		"blobs":  float64(s.Blobs),
		"bytes":  float64(s.Bytes),
	}
}

// PullStats records one pull. Every field is deterministic: independent of
// worker count, chunk arrival order and host timing.
type PullStats struct {
	Layers       int
	ChunksTotal  int // chunk references across all layers
	UniqueChunks int // distinct content digests among them
	DedupHits    int // references satisfied by another reference in this image
	CacheHits    int // unique digests already in the node cache
	ChunksFetch  int // unique digests fetched from the source
	ChunksFailed int // fetched chunks rejected (verification or source error)
	BytesFetched int64
	// SerialCycles sums the per-layer verification enclaves' cycles; the
	// critical path is the slowest layer — the shard-per-core decomposition
	// the rest of the repo reports.
	SerialCycles   sim.Cycles
	CriticalCycles sim.Cycles
	Faults         uint64
}

// pullWorkers resolves the engine's fan-out width (execution only).
func (e *Engine) pullWorkers() int {
	if e.PullWorkers > 0 {
		return e.PullWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// PullImage pulls name:tag chunk-granularly through the node cache,
// verifies every chunk and the reassembled image, and returns both. On
// chunk failures it returns an error after caching every chunk that did
// verify, so a retry resumes the partial pull instead of starting over.
func (e *Engine) PullImage(name, tag string) (*image.Image, PullStats, error) {
	var ps PullStats
	m, err := e.Registry.Manifest(name, tag)
	if err != nil {
		return nil, ps, err
	}
	lms := make([]*transfer.Manifest, len(m.LayerDigests))
	for i, d := range m.LayerDigests {
		lm, err := e.Registry.LayerManifest(d)
		if err != nil {
			return nil, ps, err
		}
		if err := lm.Validate(); err != nil {
			return nil, ps, err
		}
		lms[i] = lm
		ps.ChunksTotal += lm.Chunks()
	}
	ps.Layers = len(lms)

	// The unique chunk set in first-occurrence order (deterministic).
	seen := make(map[cryptbox.Digest]struct{}, ps.ChunksTotal)
	unique := make([]cryptbox.Digest, 0, ps.ChunksTotal)
	for _, lm := range lms {
		for _, leaf := range lm.Leaves {
			if _, dup := seen[leaf]; dup {
				continue
			}
			seen[leaf] = struct{}{}
			unique = append(unique, leaf)
		}
	}
	ps.UniqueChunks = len(unique)
	ps.DedupHits = ps.ChunksTotal - ps.UniqueChunks

	cache := e.Cache
	if cache == nil {
		// No node cache configured: a pull-private one keeps the logic
		// uniform (and still dedups within this pull).
		cache = NewBlobCache()
	}
	if err := e.classifyAndFetch(name+":"+tag, cache, unique, &ps); err != nil {
		e.recordPull(ps)
		return nil, ps, err
	}

	// Assembly fan-out: one verification enclave per layer (topology), so
	// each layer's simulated cycle total is independent of which worker
	// runs it and of the other layers.
	layers := make([]image.Layer, len(lms))
	layerCycles := make([]sim.Cycles, len(lms))
	layerFaults := make([]uint64, len(lms))
	asmErrs := make([]error, len(lms))
	sim.ParallelFor(len(lms), e.pullWorkers(), func(i int) {
		layers[i], layerCycles[i], layerFaults[i], asmErrs[i] =
			e.assembleLayer(m.LayerDigests[i], lms[i], cache)
	})
	var firstErr error
	for i, err := range asmErrs {
		ps.SerialCycles += layerCycles[i]
		ps.Faults += layerFaults[i]
		if layerCycles[i] > ps.CriticalCycles {
			ps.CriticalCycles = layerCycles[i]
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("container: pull %s:%s layer %d: %w", name, tag, i, err)
		}
	}
	if firstErr != nil {
		e.recordPull(ps)
		return nil, ps, firstErr
	}

	img := &image.Image{Manifest: m, Layers: layers}
	if err := img.Verify(); err != nil {
		e.recordPull(ps)
		return nil, ps, fmt.Errorf("container: pulled image failed verification: %w", err)
	}
	e.recordPull(ps)
	return img, ps, nil
}

// classifyAndFetch runs the cache classification and verified fetch fan-out
// for one unique chunk set: every digest is looked up once, every missing
// digest fetched exactly once, and nothing enters the cache unverified.
// Failures reject only their own chunk, so a retry resumes the partial
// pull. Updates CacheHits/ChunksFetch/ChunksFailed/BytesFetched in ps.
func (e *Engine) classifyAndFetch(label string, cache *BlobCache, unique []cryptbox.Digest, ps *PullStats) error {
	missing := make([]cryptbox.Digest, 0, len(unique))
	for _, d := range unique {
		if cache.Lookup(d) {
			ps.CacheHits++
		} else {
			missing = append(missing, d)
		}
	}
	fetchErrs := make([]error, len(missing))
	fetched := make([]int64, len(missing))
	sim.ParallelFor(len(missing), e.pullWorkers(), func(i int) {
		d := missing[i]
		b, err := e.Registry.Blob(d)
		if err != nil {
			fetchErrs[i] = err
			return
		}
		if !cache.Put(d, b) {
			fetchErrs[i] = fmt.Errorf("%w: %s", ErrChunkVerify, d)
			return
		}
		fetched[i] = int64(len(b))
	})
	var firstErr error
	for i, err := range fetchErrs {
		if err != nil {
			ps.ChunksFailed++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ps.ChunksFetch++
		ps.BytesFetched += fetched[i]
	}
	if ps.ChunksFailed > 0 {
		return fmt.Errorf("container: pull %s: %d of %d chunks failed, %d verified and cached (resume by retrying): %w",
			label, ps.ChunksFailed, len(missing), ps.ChunksFetch, firstErr)
	}
	return nil
}

// assembleBlobSet reassembles one packed blob set from cached chunks inside
// a fresh verification enclave, charging the staging, verification and
// decompression costs to its simulated memory. The receiver re-verifies
// every chunk against the manifest as it accepts it.
func (e *Engine) assembleBlobSet(label string, lm *transfer.Manifest, cache *BlobCache) ([]byte, sim.Cycles, uint64, error) {
	var stored int64
	for _, leaf := range lm.Leaves {
		b, ok := cache.peek(leaf)
		if !ok {
			return nil, 0, 0, fmt.Errorf("%w: chunk %s evicted mid-pull", ErrChunkVerify, leaf)
		}
		stored += int64(len(b))
	}
	size := uint64(stored) + uint64(lm.Size) + (1 << 20)
	size = (size + 4095) &^ 4095
	enc, arena, err := enclave.NewWorker(e.PullPlatform, size, "pull/"+label)
	if err != nil {
		return nil, 0, 0, err
	}
	defer enc.Destroy()
	recv, err := transfer.NewReceiver(lm, cryptbox.Key{})
	if err != nil {
		return nil, 0, 0, err
	}
	recv.WithAccounting(transfer.Accounting{Mem: enc.Memory(), Arena: arena})
	for j, leaf := range lm.Leaves {
		b, _ := cache.peek(leaf)
		if err := recv.Accept(j, b); err != nil {
			return nil, enc.Memory().Cycles(), enc.Memory().Faults(), err
		}
	}
	raw, err := recv.Assemble()
	if err != nil {
		return nil, enc.Memory().Cycles(), enc.Memory().Faults(), err
	}
	return raw, enc.Memory().Cycles(), enc.Memory().Faults(), nil
}

// assembleLayer reconstructs one layer through assembleBlobSet and checks
// the decoded layer against the trusted digest from the signed image
// manifest.
func (e *Engine) assembleLayer(want cryptbox.Digest, lm *transfer.Manifest, cache *BlobCache) (image.Layer, sim.Cycles, uint64, error) {
	raw, cycles, faults, err := e.assembleBlobSet(want.String(), lm, cache)
	if err != nil {
		return image.Layer{}, cycles, faults, err
	}
	l, err := image.DecodeLayer(raw)
	if err != nil {
		return image.Layer{}, cycles, faults, err
	}
	if l.Digest() != want {
		return image.Layer{}, cycles, faults,
			fmt.Errorf("%w: layer digest mismatch", image.ErrDigestMismatch)
	}
	return l, cycles, faults, nil
}

// PullBlobSet pulls one packed blob set — a shard snapshot, anything
// published through Registry.PutBlobSet — through the node cache and
// reassembles its payload. The manifest must come from a trusted channel
// (for snapshots: sealed under the service key); the pull verifies every
// chunk against the manifest's content digests, isolates tampered chunks,
// and warms the cache exactly like an image pull, so PullStats stays
// bit-identical across worker counts here too.
func (e *Engine) PullBlobSet(lm *transfer.Manifest, label string) ([]byte, PullStats, error) {
	var ps PullStats
	if err := lm.Validate(); err != nil {
		return nil, ps, err
	}
	ps.Layers = 1
	ps.ChunksTotal = lm.Chunks()
	seen := make(map[cryptbox.Digest]struct{}, ps.ChunksTotal)
	unique := make([]cryptbox.Digest, 0, ps.ChunksTotal)
	for _, leaf := range lm.Leaves {
		if _, dup := seen[leaf]; dup {
			continue
		}
		seen[leaf] = struct{}{}
		unique = append(unique, leaf)
	}
	ps.UniqueChunks = len(unique)
	ps.DedupHits = ps.ChunksTotal - ps.UniqueChunks

	cache := e.Cache
	if cache == nil {
		cache = NewBlobCache()
	}
	if err := e.classifyAndFetch(label, cache, unique, &ps); err != nil {
		e.recordPull(ps)
		return nil, ps, err
	}
	raw, cycles, faults, err := e.assembleBlobSet(label, lm, cache)
	ps.SerialCycles = cycles
	ps.CriticalCycles = cycles
	ps.Faults = faults
	e.recordPull(ps)
	if err != nil {
		return nil, ps, fmt.Errorf("container: pull %s: %w", label, err)
	}
	return raw, ps, nil
}

// recordPull remembers the engine's most recent pull for inspection.
func (e *Engine) recordPull(ps PullStats) {
	e.mu.Lock()
	e.lastPull = ps
	e.mu.Unlock()
}

// LastPullStats returns the stats of the engine's most recent pull.
func (e *Engine) LastPullStats() PullStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastPull
}
