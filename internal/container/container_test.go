package container

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"testing"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/fsshield"
	"securecloud/internal/image"
	"securecloud/internal/registry"
	"securecloud/internal/sconert"
	"securecloud/internal/shield"
)

// cloudNode bundles everything one untrusted cloud node runs.
type cloudNode struct {
	platform *enclave.Platform
	host     *shield.Host
	engine   *Engine
}

// trustedSide bundles what stays in the image owner's trusted environment.
type trustedSide struct {
	svc    *attest.Service
	cas    *sconert.CAS
	client *SCONEClient
	priv   ed25519.PrivateKey
}

func setup(t *testing.T) (*cloudNode, *trustedSide, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	svc := attest.NewService()
	p := enclave.NewPlatform(enclave.Config{})
	q, err := svc.Provision(p, "cloud-node-1")
	if err != nil {
		t.Fatal(err)
	}
	host := shield.NewHost()
	node := &cloudNode{platform: p, host: host, engine: NewEngine(p, host, reg, q)}

	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cas := sconert.NewCAS(svc)
	trusted := &trustedSide{svc: svc, cas: cas, client: NewSCONEClient(priv, cas), priv: priv}
	return node, trusted, reg
}

func buildPlainImage(t *testing.T, priv ed25519.PrivateKey) *image.Image {
	t.Helper()
	img, err := image.NewBuilder("smartgrid/theft-detector", "1.0").
		AddLayer(map[string][]byte{
			EntrypointPath:   []byte("THEFT-DETECTOR-BINARY-v1"),
			"/etc/model.cfg": []byte("sensitivity=0.97"),
		}).
		SetEntrypoint(EntrypointPath).
		SetEnclaveSize(1 << 20).
		Build(priv)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestSecureContainerWorkflow is the Figure 2 integration test: build a
// secure image in the trusted environment, push it through the untrusted
// registry, pull and execute it on the untrusted node, and communicate
// with it over encrypted streams.
func TestSecureContainerWorkflow(t *testing.T) {
	node, trusted, reg := setup(t)

	// 1. Trusted: build + secure the image.
	plain := buildPlainImage(t, trusted.priv)
	secured, secrets, err := trusted.client.BuildSecure(plain, map[string]fsshield.Mode{
		"/etc/model.cfg": fsshield.ModeEncrypted,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2. Trusted: register the SCF with the CAS.
	scf, err := trusted.client.Deploy(secured, secrets, []string{"serve"}, map[string]string{"MODE": "prod"})
	if err != nil {
		t.Fatal(err)
	}
	// 3. Push to the untrusted registry.
	if err := reg.Push(secured); err != nil {
		t.Fatal(err)
	}
	// 4. Untrusted node: pull + execute.
	c, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateRunning {
		t.Fatal("container not running")
	}
	// 5. Inside the enclave: read the protected config.
	cfg, err := c.Runtime.FS().ReadFile("/etc/model.cfg")
	if err != nil {
		t.Fatal(err)
	}
	if string(cfg) != "sensitivity=0.97" {
		t.Fatalf("config = %q", cfg)
	}
	if c.Runtime.SCF().Env["MODE"] != "prod" {
		t.Fatal("SCF env lost")
	}
	// 6. Secure communication: stdout is ciphertext on the host, plaintext
	// for the SCF holder.
	if err := c.Runtime.Stdout([]byte("theft-score meter-42 0.99")); err != nil {
		t.Fatal(err)
	}
	for _, rec := range node.host.Records("stdio/stdout") {
		if bytes.Contains(rec, []byte("theft-score")) {
			t.Fatal("stdout plaintext visible to the cloud")
		}
	}
	lines, err := ReadStdout(node.host, scf)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || string(lines[0]) != "theft-score meter-42 0.99" {
		t.Fatalf("deployer read %q", lines)
	}
	c.Stop()
	if c.State() != StateStopped {
		t.Fatal("container did not stop")
	}
}

func TestRegistryTamperingBlocksExecution(t *testing.T) {
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	secured, secrets, err := trusted.client.BuildSecure(plain, map[string]fsshield.Mode{
		"/etc/model.cfg": fsshield.ModeEncrypted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trusted.client.Deploy(secured, secrets, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(secured); err != nil {
		t.Fatal(err)
	}
	reg.TamperLayer(secured.Manifest.LayerDigests[0], func(l *image.Layer) {
		l.Files[EntrypointPath] = []byte("BACKDOORED-BINARY")
	})
	if _, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas); err == nil {
		t.Fatal("engine ran an image tampered in the registry")
	}
}

func TestModifiedCodeDeniedSCF(t *testing.T) {
	// Even if the attacker consistently re-signs a modified image (so
	// digests verify), the enclave measurement changes and the CAS refuses
	// the SCF.
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	secured, secrets, err := trusted.client.BuildSecure(plain, map[string]fsshield.Mode{
		"/etc/model.cfg": fsshield.ModeEncrypted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trusted.client.Deploy(secured, secrets, nil, nil); err != nil {
		t.Fatal(err)
	}

	// Attacker rebuilds the image with different code under their own key.
	_, attackerKey, _ := ed25519.GenerateKey(rand.Reader)
	files := secured.Flatten()
	files[EntrypointPath] = []byte("BACKDOORED-BINARY")
	evil, err := image.NewBuilder("smartgrid/theft-detector", "1.0").
		AddLayer(files).
		SetEnclaveSize(1 << 20).
		Build(attackerKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(evil); err != nil {
		t.Fatal(err)
	}
	if _, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas); !errors.Is(err, sconert.ErrNoSCF) {
		t.Fatalf("backdoored image got an SCF: %v", err)
	}
}

func TestRunPlainImageWithoutProtection(t *testing.T) {
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	if err := reg.Push(plain); err != nil {
		t.Fatal(err)
	}
	m, err := ExpectedMeasurement(plain)
	if err != nil {
		t.Fatal(err)
	}
	scf, _ := sconert.NewSCF(cryptbox.Key{}, cryptbox.Digest{}, nil, nil)
	trusted.cas.Register(attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, scf)
	c, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas)
	if err != nil {
		t.Fatal(err)
	}
	if c.Runtime.FS() != nil {
		t.Fatal("plain image got a protected FS")
	}
}

func TestRunMissingImage(t *testing.T) {
	node, trusted, _ := setup(t)
	if _, err := node.engine.Run("ghost", "1.0", trusted.cas); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRunImageWithoutEntrypoint(t *testing.T) {
	node, trusted, reg := setup(t)
	img, err := image.NewBuilder("no-entry", "1").
		AddLayer(map[string][]byte{"/etc/only-config": []byte("x")}).
		Build(trusted.priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(img); err != nil {
		t.Fatal(err)
	}
	if _, err := node.engine.Run("no-entry", "1", trusted.cas); !errors.Is(err, ErrNoEntrypoint) {
		t.Fatalf("err = %v, want ErrNoEntrypoint", err)
	}
}

func TestBuildSecureRefusesEncryptedEntrypoint(t *testing.T) {
	_, trusted, _ := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	_, _, err := trusted.client.BuildSecure(plain, map[string]fsshield.Mode{
		EntrypointPath: fsshield.ModeEncrypted,
	})
	if !errors.Is(err, ErrEntrypointEncrypted) {
		t.Fatalf("err = %v, want ErrEntrypointEncrypted", err)
	}
}

func TestExpectedMeasurementMatchesEngine(t *testing.T) {
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	want, err := ExpectedMeasurement(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(plain); err != nil {
		t.Fatal(err)
	}
	scf, _ := sconert.NewSCF(cryptbox.Key{}, cryptbox.Digest{}, nil, nil)
	trusted.cas.Register(attest.Policy{AllowedMREnclave: []cryptbox.Digest{want}}, scf)
	c, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Runtime.Enclave().Measurement()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("engine measurement differs from client prediction")
	}
}

func TestUsageAccounting(t *testing.T) {
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	if err := reg.Push(plain); err != nil {
		t.Fatal(err)
	}
	m, _ := ExpectedMeasurement(plain)
	scf, _ := sconert.NewSCF(cryptbox.Key{}, cryptbox.Digest{}, nil, nil)
	trusted.cas.Register(attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, scf)
	c, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Runtime.Stdout([]byte("x"))
	u := c.Usage()
	if u.CPUCycles == 0 || u.MemoryBytes == 0 || u.Syscalls == 0 {
		t.Fatalf("empty usage record: %+v", u)
	}
}

func TestTCBAccounting(t *testing.T) {
	// §III-A: only the application logic and thin runtime live inside the
	// TCB. The TCB must equal the enclave size and stay far below the
	// "whole node" footprint a conventional TCB would have.
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	if err := reg.Push(plain); err != nil {
		t.Fatal(err)
	}
	m, _ := ExpectedMeasurement(plain)
	scf, _ := sconert.NewSCF(cryptbox.Key{}, cryptbox.Digest{}, nil, nil)
	trusted.cas.Register(attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, scf)
	c, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Runtime.TCBBytes(); got != 1<<20 {
		t.Fatalf("TCB = %d bytes, want the 1 MiB enclave", got)
	}
}

func TestEngineListsContainers(t *testing.T) {
	node, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	if err := reg.Push(plain); err != nil {
		t.Fatal(err)
	}
	m, _ := ExpectedMeasurement(plain)
	scf, _ := sconert.NewSCF(cryptbox.Key{}, cryptbox.Digest{}, nil, nil)
	trusted.cas.Register(attest.Policy{AllowedMREnclave: []cryptbox.Digest{m}}, scf)
	for i := 0; i < 3; i++ {
		if _, err := node.engine.Run("smartgrid/theft-detector", "1.0", trusted.cas); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(node.engine.Containers()); got != 3 {
		t.Fatalf("Containers() = %d, want 3", got)
	}
}

// TestLaunchNodeBootsReplica: the application plane's node-allocation
// helper yields an engine that runs the full secure boot sequence, and
// each launched node is its own simulated platform.
func TestLaunchNodeBootsReplica(t *testing.T) {
	_, trusted, reg := setup(t)
	plain := buildPlainImage(t, trusted.priv)
	secured, secrets, err := trusted.client.BuildSecure(plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trusted.client.Deploy(secured, secrets, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := reg.Push(secured); err != nil {
		t.Fatal(err)
	}

	a, err := LaunchNode(trusted.svc, "plane/r0001", reg, enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LaunchNode(trusted.svc, "plane/r0002", reg, enclave.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Platform == b.Platform {
		t.Fatal("launched nodes share a platform")
	}
	if _, err := LaunchNode(trusted.svc, "plane/r0001", reg, enclave.Config{}); err == nil {
		t.Fatal("duplicate platform ID accepted")
	}
	c, err := a.Run(secured.Manifest.Name, secured.Manifest.Tag, trusted.cas)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != StateRunning {
		t.Fatalf("state = %v", c.State())
	}
	c.Stop()
}
