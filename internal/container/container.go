// Package container implements secure containers (paper §IV, §V-A): the
// container engine that runs micro-service images inside SGX enclaves, the
// SCONE client that wraps the engine for building and spawning secure
// containers, and the resource monitoring the paper's secure-container
// layer requires for accounting and billing.
//
// From the engine's perspective a secure container is indistinguishable
// from a regular one: the engine pulls the image, loads the entrypoint into
// an enclave and starts it. All secrets flow through the attested CAS
// channel; the engine never sees them.
package container

import (
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/attest"
	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/image"
	"securecloud/internal/sconert"
	"securecloud/internal/shield"
	"securecloud/internal/sim"
)

// EntrypointPath is the image path of the micro-service's protected
// executable (statically linked against the SCONE library, per the paper).
const EntrypointPath = "/bin/app"

// DefaultEnclaveSize is used when the image does not request one.
const DefaultEnclaveSize = 64 << 20

// State tracks a container through its lifecycle.
type State int

// Container lifecycle states.
const (
	StateRunning State = iota
	StateStopped
)

func (s State) String() string {
	if s == StateRunning {
		return "running"
	}
	return "stopped"
}

// Errors returned by the engine.
var (
	ErrNoEntrypoint = errors.New("container: image has no entrypoint executable")
	ErrStopped      = errors.New("container: container is stopped")
)

// Container is one running secure container.
type Container struct {
	ID      string
	Ref     string
	Runtime *sconert.Runtime

	mu    sync.Mutex
	state State
}

// State returns the lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Stop tears the container down and releases its EPC pages.
func (c *Container) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state == StateStopped {
		return
	}
	c.state = StateStopped
	c.Runtime.Enclave().Destroy()
}

// Usage is the resource accounting record the secure-container layer
// exposes for billing (paper §III-B(1): "monitor hardware usage ... allow
// for accounting and billing").
type Usage struct {
	CPUCycles   sim.Cycles
	MemoryBytes uint64
	PageFaults  uint64
	Syscalls    uint64
	AEX         uint64
}

// Usage returns the container's current resource consumption.
func (c *Container) Usage() Usage {
	enc := c.Runtime.Enclave()
	return Usage{
		CPUCycles:   enc.Memory().Cycles(),
		MemoryBytes: enc.Size(),
		PageFaults:  enc.Memory().Faults(),
		Syscalls:    c.Runtime.Shield().Calls(),
		AEX:         enc.AEXCount(),
	}
}

// Engine is a node's container engine: one platform, one host OS, a pull
// source and the node's quoting enclave.
type Engine struct {
	Platform *enclave.Platform
	Host     *shield.Host
	// Registry is the chunk-granular pull source: the in-process registry
	// or its HTTP client.
	Registry PullSource
	Quoter   *attest.Quoter
	Mode     shield.CallMode
	// Cache is the node-local blob cache shared by the engines on one
	// node; nil pulls through a pull-private cache.
	Cache *BlobCache
	// PullWorkers bounds the pull fan-out (execution only; 0 = GOMAXPROCS).
	PullWorkers int
	// PullPlatform configures the per-layer verification enclaves' platform
	// (topology: pin when comparing pull cycle totals; zero = defaults).
	PullPlatform enclave.Config

	mu       sync.Mutex
	nextID   int
	run      map[string]*Container
	lastPull PullStats
}

// NewEngine assembles an engine.
func NewEngine(p *enclave.Platform, host *shield.Host, reg PullSource, q *attest.Quoter) *Engine {
	return &Engine{
		Platform: p, Host: host, Registry: reg, Quoter: q,
		Mode: shield.ModeAsync,
		run:  make(map[string]*Container),
	}
}

// LaunchNode provisions a fresh SGX node for the application plane: a
// simulated platform built from cfg (zero Config = platform defaults),
// its quoting enclave registered with svc under platformID, a shielded
// host, and a container engine pulling from reg. It is the node-allocation
// step of the paper's replica boot sequence; Engine.Run then performs
// pull → verify → build enclave → attest → SCF release. Giving every
// replica its own node keeps the simulated platforms disjoint, which is
// what makes per-replica cycle totals independent of how replicas are
// interleaved at execution time.
func LaunchNode(svc *attest.Service, platformID string, reg PullSource, cfg enclave.Config) (*Engine, error) {
	p := enclave.NewPlatform(cfg)
	q, err := svc.Provision(p, platformID)
	if err != nil {
		return nil, err
	}
	return NewEngine(p, shield.NewHost(), reg, q), nil
}

// Run pulls name:tag chunk-granularly through the node cache (PullImage:
// parallel fetch, per-chunk verification, per-layer verification
// enclaves), loads its entrypoint into a fresh enclave, boots the SCONE
// runtime against cas and returns the running container. The signer digest
// for MRSIGNER is derived from the manifest's signing key.
func (e *Engine) Run(name, tag string, cas *sconert.CAS) (*Container, error) {
	img, _, err := e.PullImage(name, tag)
	if err != nil {
		return nil, err
	}
	enc, err := BuildEnclave(e.Platform, img)
	if err != nil {
		return nil, err
	}
	cfg := sconert.BootConfig{
		Enclave: enc,
		Quoter:  e.Quoter,
		CAS:     cas,
		Host:    e.Host,
		Mode:    e.Mode,
	}
	if img.Manifest.Secure {
		sealedPF, err := img.SealedProtectionFile()
		if err != nil {
			enc.Destroy()
			return nil, err
		}
		blobs, err := img.ProtectedBlobs()
		if err != nil {
			enc.Destroy()
			return nil, err
		}
		cfg.SealedProtectionFile = sealedPF
		cfg.Blobs = blobs
	}
	rt, err := sconert.Boot(cfg)
	if err != nil {
		enc.Destroy()
		return nil, err
	}

	e.mu.Lock()
	e.nextID++
	id := fmt.Sprintf("sc-%06d", e.nextID)
	c := &Container{ID: id, Ref: img.Ref(), Runtime: rt, state: StateRunning}
	e.run[id] = c
	e.mu.Unlock()
	return c, nil
}

// Containers lists the engine's containers.
func (e *Engine) Containers() []*Container {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Container, 0, len(e.run))
	for _, c := range e.run {
		out = append(out, c)
	}
	return out
}

// BuildEnclave loads an image's entrypoint into a fresh enclave on p,
// following the deterministic build sequence that makes MRENCLAVE
// reproducible: ECREATE(size) + EADD(entrypoint bytes) + EINIT.
func BuildEnclave(p *enclave.Platform, img *image.Image) (*enclave.Enclave, error) {
	code, err := img.File(EntrypointPath)
	if err != nil {
		return nil, ErrNoEntrypoint
	}
	size := img.Manifest.Config.EnclaveSize
	if size == 0 {
		size = DefaultEnclaveSize
	}
	signer := cryptbox.Sum(img.Manifest.SignerPublicKey)
	enc, err := p.ECreate(size, signer)
	if err != nil {
		return nil, err
	}
	if _, err := enc.EAdd(code); err != nil {
		enc.Destroy()
		return nil, err
	}
	if err := enc.EInit(); err != nil {
		enc.Destroy()
		return nil, err
	}
	return enc, nil
}

// ExpectedMeasurement predicts the MRENCLAVE an engine will produce for an
// image, by replaying the build sequence on a scratch platform.
// Measurements are platform-independent, so the image owner can compute
// this in their trusted environment and register the CAS policy before the
// image ever runs in the cloud.
func ExpectedMeasurement(img *image.Image) (cryptbox.Digest, error) {
	scratch := enclave.NewPlatform(enclave.Config{})
	enc, err := BuildEnclave(scratch, img)
	if err != nil {
		return cryptbox.Digest{}, err
	}
	defer enc.Destroy()
	return enc.Measurement()
}
