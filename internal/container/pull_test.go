package container

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
	"securecloud/internal/image"
	"securecloud/internal/registry"
	"securecloud/internal/shield"
	"securecloud/internal/sim"
	"securecloud/internal/transfer"
)

// pullFixture is a registry holding two images that share a multi-chunk
// base layer, plus a builder for engines against it.
type pullFixture struct {
	reg  *registry.Registry
	imgs []*image.Image
}

func newPullFixture(t *testing.T) *pullFixture {
	t.Helper()
	reg := registry.New()
	base := make([]byte, 4*registry.LayerChunkSize)
	sim.NewRand(11).Read(base)
	var imgs []*image.Image
	for i := 0; i < 2; i++ {
		priv := ed25519.NewKeyFromSeed(bytes.Repeat([]byte{byte(i + 1)}, ed25519.SeedSize))
		uniq := make([]byte, 3*registry.LayerChunkSize/2)
		sim.NewRand(int64(100 + i)).Read(uniq)
		img, err := image.NewBuilder("svc/pull", string(rune('a'+i))).
			AddLayer(map[string][]byte{"/lib/base": base}).
			AddLayer(map[string][]byte{EntrypointPath: uniq}).
			SetEntrypoint(EntrypointPath).
			SetEnclaveSize(1 << 20).
			Build(priv)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Push(img); err != nil {
			t.Fatal(err)
		}
		imgs = append(imgs, img)
	}
	return &pullFixture{reg: reg, imgs: imgs}
}

func (f *pullFixture) engine(workers int, cache *BlobCache) *Engine {
	e := NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), f.reg, nil)
	e.PullWorkers = workers
	e.Cache = cache
	return e
}

// TestPullMatchesWholeLayerPath: the chunk-granular pull reconstructs the
// image bit-identically to both the original and the registry's
// whole-layer reassembly path.
func TestPullMatchesWholeLayerPath(t *testing.T) {
	f := newPullFixture(t)
	e := f.engine(4, NewBlobCache())
	for _, want := range f.imgs {
		got, ps, err := e.PullImage(want.Manifest.Name, want.Manifest.Tag)
		if err != nil {
			t.Fatal(err)
		}
		if ps.ChunksTotal == 0 || ps.Layers != 2 {
			t.Fatalf("stats = %+v", ps)
		}
		whole, err := f.reg.Pull(want.Manifest.Name, want.Manifest.Tag)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range []*image.Image{want, whole} {
			if len(got.Layers) != len(ref.Layers) {
				t.Fatalf("layer count %d != %d", len(got.Layers), len(ref.Layers))
			}
			for i := range got.Layers {
				if !bytes.Equal(got.Layers[i].Encode(), ref.Layers[i].Encode()) {
					t.Fatalf("layer %d not bit-identical", i)
				}
			}
		}
		if err := got.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPullStatsInvariantAcrossWorkers: every simulated pull metric is a
// pure function of image and cache state — bit-identical across worker
// counts 1, 2, 4, 8 for cold, shared-base and warm pulls.
func TestPullStatsInvariantAcrossWorkers(t *testing.T) {
	f := newPullFixture(t)
	type run struct{ cold, shared, warm PullStats }
	var first run
	for wi, workers := range []int{1, 2, 4, 8} {
		cache := NewBlobCache()
		e := f.engine(workers, cache)
		var r run
		var err error
		if _, r.cold, err = e.PullImage("svc/pull", "a"); err != nil {
			t.Fatal(err)
		}
		if _, r.shared, err = e.PullImage("svc/pull", "b"); err != nil {
			t.Fatal(err)
		}
		if _, r.warm, err = e.PullImage("svc/pull", "a"); err != nil {
			t.Fatal(err)
		}
		if wi == 0 {
			first = r
			if r.cold.ChunksFetch != r.cold.UniqueChunks || r.cold.CacheHits != 0 {
				t.Fatalf("cold pull: %+v", r.cold)
			}
			if r.shared.CacheHits == 0 || r.shared.ChunksFetch >= r.shared.UniqueChunks {
				t.Fatalf("shared-base pull did not reuse the cache: %+v", r.shared)
			}
			if r.warm.ChunksFetch != 0 || r.warm.CacheHits != r.warm.UniqueChunks {
				t.Fatalf("warm pull fetched chunks: %+v", r.warm)
			}
			if r.cold.SerialCycles == 0 || r.cold.CriticalCycles == 0 {
				t.Fatalf("cold pull charged no cycles: %+v", r.cold)
			}
			continue
		}
		if r != first {
			t.Fatalf("pull stats vary with worker count %d:\n  got  %+v\n  want %+v", workers, r, first)
		}
	}
}

// TestWarmCacheSecondReplicaZeroFetch: two engines sharing one node cache
// — the second replica's boot pulls nothing over the network.
func TestWarmCacheSecondReplicaZeroFetch(t *testing.T) {
	f := newPullFixture(t)
	cache := NewBlobCache()
	e1 := f.engine(4, cache)
	if _, ps, err := e1.PullImage("svc/pull", "a"); err != nil || ps.ChunksFetch == 0 {
		t.Fatalf("first replica: %+v, %v", ps, err)
	}
	e2 := f.engine(4, cache)
	img, ps, err := e2.PullImage("svc/pull", "a")
	if err != nil {
		t.Fatal(err)
	}
	if ps.ChunksFetch != 0 || ps.BytesFetched != 0 {
		t.Fatalf("second replica fetched: %+v", ps)
	}
	if err := img.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTamperedChunkRejectedWithoutPoisoningCache: a dishonest registry
// flipping one chunk fails that chunk's pull; every other chunk is
// verified and cached, and after the source heals, the retry resumes by
// fetching exactly the one missing chunk.
func TestTamperedChunkRejectedWithoutPoisoningCache(t *testing.T) {
	f := newPullFixture(t)
	lm, err := f.reg.LayerManifest(f.imgs[0].Manifest.LayerDigests[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := lm.Leaves[2]
	orig, err := f.reg.Blob(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !f.reg.TamperBlob(victim, func(b []byte) []byte { b[7] ^= 1; return b }) {
		t.Fatal("tamper hook missed blob")
	}

	cache := NewBlobCache()
	e := f.engine(4, cache)
	_, ps, err := e.PullImage("svc/pull", "a")
	if !errors.Is(err, ErrChunkVerify) {
		t.Fatalf("err = %v, want ErrChunkVerify", err)
	}
	if ps.ChunksFailed != 1 {
		t.Fatalf("failed = %d, want 1", ps.ChunksFailed)
	}
	if ps.ChunksFetch != ps.UniqueChunks-1 {
		t.Fatalf("fetched %d of %d; honest chunks should cache", ps.ChunksFetch, ps.UniqueChunks)
	}
	st := cache.Stats()
	if st.Stores != uint64(ps.UniqueChunks-1) {
		t.Fatalf("cache stores = %d, want %d", st.Stores, ps.UniqueChunks-1)
	}
	// The tampered bytes never entered the cache under the victim digest.
	if b, ok := cache.peek(victim); ok {
		t.Fatalf("tampered chunk cached: %d bytes", len(b))
	}

	// Heal the registry; the retry resumes: exactly one chunk crosses.
	if !f.reg.RestoreBlob(victim, orig) {
		t.Fatal("restore failed")
	}
	img, ps2, err := e.PullImage("svc/pull", "a")
	if err != nil {
		t.Fatal(err)
	}
	if ps2.ChunksFetch != 1 || ps2.CacheHits != ps2.UniqueChunks-1 {
		t.Fatalf("resume fetched %d (cache hits %d), want exactly 1", ps2.ChunksFetch, ps2.CacheHits)
	}
	if err := img.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCachePutRejectsMismatchedBytes: the poisoning guard itself.
func TestCachePutRejectsMismatchedBytes(t *testing.T) {
	c := NewBlobCache()
	good := []byte("chunk-bytes")
	if !c.Put(cryptbox.Sum(good), good) {
		t.Fatal("valid chunk rejected")
	}
	if c.Put(cryptbox.Sum(good), []byte("other-bytes")) {
		t.Fatal("mismatched bytes accepted")
	}
	if st := c.Stats(); st.Stores != 1 || st.Blobs != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPullConsistentLieDetectedAtLayer: a registry that rewrites a layer
// self-consistently (chunks match a forged transfer manifest) passes chunk
// verification but is caught by the layer digest from the signed image
// manifest — and the forged chunks in the cache are harmless because they
// are correctly addressed by their own content.
func TestPullConsistentLieDetectedAtLayer(t *testing.T) {
	f := newPullFixture(t)
	if !f.reg.TamperLayer(f.imgs[0].Manifest.LayerDigests[1], func(l *image.Layer) {
		l.Files[EntrypointPath] = []byte("BACKDOORED-BINARY")
	}) {
		t.Fatal("tamper hook missed layer")
	}
	e := f.engine(4, NewBlobCache())
	_, _, err := e.PullImage("svc/pull", "a")
	if !errors.Is(err, image.ErrDigestMismatch) {
		t.Fatalf("err = %v, want ErrDigestMismatch", err)
	}
	// The untampered sibling image still pulls clean through the same cache.
	img, _, err := e.PullImage("svc/pull", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Verify(); err != nil {
		t.Fatal(err)
	}
}

// blobSetFixture publishes a convergent-chunked payload (with a repeated
// block, so dedup is exercised) to a fresh registry, as a durable-store
// snapshot would.
func blobSetFixture(t *testing.T) (*registry.Registry, *transfer.Manifest, []byte) {
	t.Helper()
	reg := registry.New()
	block := make([]byte, 256)
	sim.NewRand(17).Read(block)
	payload := append(append(append([]byte(nil), block...), block...), bytes.Repeat([]byte("tail"), 64)...)
	lm, chunks, err := transfer.PackConvergent("snap/shard-0", payload, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.PutBlobSet(lm, chunks); err != nil {
		t.Fatal(err)
	}
	return reg, lm, payload
}

// TestPullBlobSetRoundTrip: a trusted manifest pulls back the exact payload
// through the verified chunk path, with stats accounted as one layer.
func TestPullBlobSetRoundTrip(t *testing.T) {
	reg, lm, payload := blobSetFixture(t)
	e := NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
	e.Cache = NewBlobCache()
	e.PullWorkers = 4
	got, ps, err := e.PullBlobSet(lm, "snap/shard-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("pulled payload differs")
	}
	if ps.Layers != 1 || ps.ChunksTotal != lm.Chunks() {
		t.Fatalf("stats = %+v", ps)
	}
	if ps.DedupHits == 0 {
		t.Fatalf("repeated block produced no dedup hits: %+v", ps)
	}
	if ps.SerialCycles == 0 || ps.CriticalCycles == 0 {
		t.Fatalf("no cycles charged: %+v", ps)
	}

	// Second pull rides the warm node cache: nothing crosses the network.
	got2, ps2, err := e.PullBlobSet(lm, "snap/shard-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, payload) {
		t.Fatal("warm pull payload differs")
	}
	if ps2.ChunksFetch != 0 || ps2.BytesFetched != 0 || ps2.CacheHits != ps2.UniqueChunks {
		t.Fatalf("warm pull fetched: %+v", ps2)
	}
}

// TestPullBlobSetTamperIsolation: one tampered chunk fails the pull without
// poisoning the cache; after the source heals, the retry fetches exactly
// the missing chunk.
func TestPullBlobSetTamperIsolation(t *testing.T) {
	reg, lm, payload := blobSetFixture(t)
	victim := lm.Leaves[1]
	orig, err := reg.Blob(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !reg.TamperBlob(victim, func(b []byte) []byte { b[3] ^= 1; return b }) {
		t.Fatal("tamper hook missed blob")
	}
	e := NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
	e.Cache = NewBlobCache()
	e.PullWorkers = 4
	if _, ps, err := e.PullBlobSet(lm, "snap/shard-0"); !errors.Is(err, ErrChunkVerify) {
		t.Fatalf("err = %v, want ErrChunkVerify", err)
	} else if ps.ChunksFailed != 1 || ps.ChunksFetch != ps.UniqueChunks-1 {
		t.Fatalf("tampered pull: %+v", ps)
	}
	if !reg.RestoreBlob(victim, orig) {
		t.Fatal("restore failed")
	}
	got, ps, err := e.PullBlobSet(lm, "snap/shard-0")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("resumed payload differs")
	}
	if ps.ChunksFetch != 1 || ps.CacheHits != ps.UniqueChunks-1 {
		t.Fatalf("resume fetched %d (cache hits %d), want exactly 1", ps.ChunksFetch, ps.CacheHits)
	}
}

// TestPullBlobSetStatsInvariantAcrossWorkers: blob-set pull metrics are
// topology, bit-identical across worker counts.
func TestPullBlobSetStatsInvariantAcrossWorkers(t *testing.T) {
	var first PullStats
	var payload []byte
	for wi, workers := range []int{1, 2, 4, 8} {
		reg, lm, want := blobSetFixture(t)
		e := NewEngine(enclave.NewPlatform(enclave.Config{}), shield.NewHost(), reg, nil)
		e.Cache = NewBlobCache()
		e.PullWorkers = workers
		got, ps, err := e.PullBlobSet(lm, "snap/shard-0")
		if err != nil {
			t.Fatal(err)
		}
		if wi == 0 {
			first, payload = ps, want
			continue
		}
		if ps != first || !bytes.Equal(got, payload) {
			t.Fatalf("workers=%d: %+v vs %+v", workers, ps, first)
		}
	}
}
