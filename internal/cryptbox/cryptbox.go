// Package cryptbox implements the cryptographic primitives shared across the
// SecureCloud stack: authenticated encryption (AES-128-GCM), key derivation
// (HKDF over HMAC-SHA256, RFC 5869), message authentication, and a small key
// hierarchy used by the enclave sealing and file-system shield layers.
//
// Everything is built on the Go standard library only. The package exposes
// value types with explicit key material rather than global state so that
// tests can inject fixed keys and the simulator stays deterministic.
package cryptbox

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// KeySize is the symmetric key size in bytes (AES-128).
const KeySize = 16

// MACSize is the size of an HMAC-SHA256 tag in bytes.
const MACSize = sha256.Size

// NonceSize is the AES-GCM nonce size in bytes.
const NonceSize = 12

// ErrAuth is returned when decryption or MAC verification fails. The caller
// must treat the data as tampered with: in the SecureCloud threat model the
// cloud provider controls all storage and networking.
var ErrAuth = errors.New("cryptbox: authentication failed")

// Key is a 128-bit symmetric key.
type Key [KeySize]byte

// NewRandomKey draws a key from crypto/rand.
func NewRandomKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return Key{}, fmt.Errorf("cryptbox: reading randomness: %w", err)
	}
	return k, nil
}

// KeyFromBytes builds a key from exactly KeySize bytes.
func KeyFromBytes(b []byte) (Key, error) {
	var k Key
	if len(b) != KeySize {
		return k, fmt.Errorf("cryptbox: key must be %d bytes, got %d", KeySize, len(b))
	}
	copy(k[:], b)
	return k, nil
}

// Box is an authenticated-encryption context bound to one key.
type Box struct {
	key  Key
	aead cipher.AEAD
	// nonceRand is the randomness source for nonces; tests may fix it.
	nonceRand io.Reader
}

// NewBox returns an AES-128-GCM box for the key.
func NewBox(key Key) (*Box, error) {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("cryptbox: %w", err)
	}
	aead, err := cipher.NewGCM(blk)
	if err != nil {
		return nil, fmt.Errorf("cryptbox: %w", err)
	}
	return &Box{key: key, aead: aead, nonceRand: rand.Reader}, nil
}

// SetNonceSource overrides the nonce randomness source. Intended for tests
// that need bit-reproducible ciphertexts; never use a fixed source with the
// same key for two different plaintexts in production paths.
func (b *Box) SetNonceSource(r io.Reader) { b.nonceRand = r }

// Seal encrypts plaintext with the given additional authenticated data.
// The output layout is nonce || ciphertext+tag.
func (b *Box) Seal(plaintext, aad []byte) ([]byte, error) {
	return b.SealAppend(nil, plaintext, aad)
}

// SealAppend is Seal appending to dst (which may be nil, or a recycled
// buffer from GetScratch): the hot-path form that lets callers reuse
// sealing buffers instead of allocating one per message.
func (b *Box) SealAppend(dst, plaintext, aad []byte) ([]byte, error) {
	var nonce [NonceSize]byte
	if _, err := io.ReadFull(b.nonceRand, nonce[:]); err != nil {
		return nil, fmt.Errorf("cryptbox: reading nonce: %w", err)
	}
	if cap(dst)-len(dst) < NonceSize+len(plaintext)+b.aead.Overhead() {
		grown := make([]byte, len(dst), len(dst)+NonceSize+len(plaintext)+b.aead.Overhead())
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, nonce[:]...)
	return b.aead.Seal(dst, nonce[:], plaintext, aad), nil
}

// Open authenticates and decrypts data produced by Seal with the same AAD.
func (b *Box) Open(sealed, aad []byte) ([]byte, error) {
	if len(sealed) < NonceSize+b.aead.Overhead() {
		return nil, ErrAuth
	}
	nonce, ct := sealed[:NonceSize], sealed[NonceSize:]
	pt, err := b.aead.Open(nil, nonce, ct, aad)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// Overhead returns the ciphertext expansion of Seal in bytes.
func (b *Box) Overhead() int { return NonceSize + b.aead.Overhead() }

// boxCache interns one Box per key for CachedBox.
var boxCache sync.Map // Key -> *Box

// CachedBox returns a process-wide interned Box for key, building the AES
// cipher and GCM context only on first use. Hot paths that previously
// constructed a fresh AEAD per message (one key-schedule expansion each)
// share one instance instead; a Box is safe for concurrent Seal/Open.
// The cache never evicts: it holds one entry per distinct key ever passed,
// so it suits long-lived keys (client identities, topic keys, test
// fixtures). Components that mint unbounded ephemeral keys — e.g. a broker
// handshaking churning sessions — must hold a per-session Box from NewBox
// instead of interning here. Never call SetNonceSource on a cached box: it
// would redirect nonce randomness for every holder.
func CachedBox(key Key) (*Box, error) {
	if b, ok := boxCache.Load(key); ok {
		return b.(*Box), nil
	}
	b, err := NewBox(key)
	if err != nil {
		return nil, err
	}
	actual, _ := boxCache.LoadOrStore(key, b)
	return actual.(*Box), nil
}

// scratchPool recycles the short-lived buffers hot paths assemble
// plaintexts and sealed frames in.
var scratchPool = sync.Pool{New: func() any { return make([]byte, 0, 4096) }}

// GetScratch returns an empty recycled buffer for transient encode/seal
// work. Return it with PutScratch once nothing retains it (sealed output
// handed to a queue must be copied or simply not pooled).
func GetScratch() []byte { return scratchPool.Get().([]byte)[:0] }

// PutScratch recycles a buffer obtained from GetScratch.
func PutScratch(b []byte) {
	if cap(b) > 0 {
		scratchPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is fine here
	}
}

// MAC computes HMAC-SHA256 over data with the key.
func MAC(key Key, data []byte) [MACSize]byte {
	m := hmac.New(sha256.New, key[:])
	m.Write(data)
	var out [MACSize]byte
	copy(out[:], m.Sum(nil))
	return out
}

// VerifyMAC reports whether tag authenticates data under key, in constant
// time.
func VerifyMAC(key Key, data []byte, tag [MACSize]byte) bool {
	want := MAC(key, data)
	return hmac.Equal(want[:], tag[:])
}

// hkdfExtract implements the RFC 5869 extract step.
func hkdfExtract(salt, ikm []byte) []byte {
	if len(salt) == 0 {
		salt = make([]byte, sha256.Size)
	}
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

// hkdfExpand implements the RFC 5869 expand step for up to 255 blocks.
func hkdfExpand(prk, info []byte, length int) ([]byte, error) {
	if length > 255*sha256.Size {
		return nil, fmt.Errorf("cryptbox: hkdf length %d too large", length)
	}
	var out, prev []byte
	for counter := byte(1); len(out) < length; counter++ {
		m := hmac.New(sha256.New, prk)
		m.Write(prev)
		m.Write(info)
		m.Write([]byte{counter})
		prev = m.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}

// HKDF derives length bytes from the input key material, salt and context
// info per RFC 5869 (HMAC-SHA256).
func HKDF(ikm, salt, info []byte, length int) ([]byte, error) {
	return hkdfExpand(hkdfExtract(salt, ikm), info, length)
}

// DeriveKey derives a labelled sub-key from a parent key. Labels partition
// the key space: the enclave sealing key, the FS protection keys and the
// stream keys of one container are all children of its root key under
// distinct labels.
func DeriveKey(parent Key, label string) (Key, error) {
	raw, err := HKDF(parent[:], nil, []byte(label), KeySize)
	if err != nil {
		return Key{}, err
	}
	return KeyFromBytes(raw)
}

// StreamCipher returns an AES-128-CTR stream bound to key and a 16-byte IV
// derived from the label and the 64-bit stream offset block. It is used by
// the shield layer to encrypt stdio streams where records must be
// independently decryptable.
func StreamCipher(key Key, label string, block uint64) (cipher.Stream, error) {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("cryptbox: %w", err)
	}
	iv := sha256.Sum256(append([]byte(label), u64le(block)...))
	return cipher.NewCTR(blk, iv[:aes.BlockSize]), nil
}

func u64le(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// Digest is a SHA-256 content hash, used for image content addressing and
// enclave measurement.
type Digest [sha256.Size]byte

// Sum computes the SHA-256 digest of data.
func Sum(data []byte) Digest { return sha256.Sum256(data) }

// String renders the digest in hex, prefixed like a registry digest.
func (d Digest) String() string { return fmt.Sprintf("sha256:%x", d[:]) }

// IsZero reports whether the digest is all zeroes (unset).
func (d Digest) IsZero() bool { return d == Digest{} }
