package cryptbox

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testKey(b byte) Key {
	var k Key
	for i := range k {
		k[i] = b
	}
	return k
}

func TestSealOpenRoundTrip(t *testing.T) {
	box, err := NewBox(testKey(1))
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("smart meter reading 42.7 kWh")
	aad := []byte("meter-17")
	sealed, err := box.Seal(pt, aad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := box.Open(sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip mismatch: got %q want %q", got, pt)
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	box, _ := NewBox(testKey(1))
	sealed, _ := box.Seal([]byte("payload"), nil)
	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x80
		if _, err := box.Open(bad, nil); err == nil {
			t.Fatalf("tampering byte %d went undetected", i)
		}
	}
}

func TestOpenRejectsWrongAAD(t *testing.T) {
	box, _ := NewBox(testKey(1))
	sealed, _ := box.Seal([]byte("payload"), []byte("meter-17"))
	if _, err := box.Open(sealed, []byte("meter-18")); err == nil {
		t.Fatal("wrong AAD accepted")
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	a, _ := NewBox(testKey(1))
	b, _ := NewBox(testKey(2))
	sealed, _ := a.Seal([]byte("payload"), nil)
	if _, err := b.Open(sealed, nil); err == nil {
		t.Fatal("wrong key accepted")
	}
}

func TestOpenRejectsShortInput(t *testing.T) {
	box, _ := NewBox(testKey(1))
	for n := 0; n < box.Overhead(); n++ {
		if _, err := box.Open(make([]byte, n), nil); err == nil {
			t.Fatalf("short input of %d bytes accepted", n)
		}
	}
}

func TestSealEmptyPlaintext(t *testing.T) {
	box, _ := NewBox(testKey(1))
	sealed, err := box.Seal(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := box.Open(sealed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty plaintext, got %d bytes", len(got))
	}
}

func TestSealUsesFreshNonces(t *testing.T) {
	box, _ := NewBox(testKey(1))
	a, _ := box.Seal([]byte("x"), nil)
	b, _ := box.Seal([]byte("x"), nil)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of the same plaintext were identical (nonce reuse)")
	}
}

func TestKeyFromBytes(t *testing.T) {
	if _, err := KeyFromBytes(make([]byte, KeySize-1)); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := KeyFromBytes(make([]byte, KeySize+1)); err == nil {
		t.Fatal("long key accepted")
	}
	k, err := KeyFromBytes(bytes.Repeat([]byte{7}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	if k != testKey(7) {
		t.Fatal("key bytes not copied")
	}
}

func TestNewRandomKeyDistinct(t *testing.T) {
	a, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomKey()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two random keys were equal")
	}
}

func TestMACVerify(t *testing.T) {
	k := testKey(3)
	tag := MAC(k, []byte("data"))
	if !VerifyMAC(k, []byte("data"), tag) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC(k, []byte("Data"), tag) {
		t.Fatal("MAC over different data accepted")
	}
	if VerifyMAC(testKey(4), []byte("data"), tag) {
		t.Fatal("MAC under different key accepted")
	}
}

func TestHKDFKnownLengths(t *testing.T) {
	for _, n := range []int{1, 16, 32, 33, 64, 255} {
		out, err := HKDF([]byte("ikm"), []byte("salt"), []byte("info"), n)
		if err != nil {
			t.Fatalf("HKDF length %d: %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("HKDF length %d returned %d bytes", n, len(out))
		}
	}
}

func TestHKDFTooLong(t *testing.T) {
	if _, err := HKDF([]byte("ikm"), nil, nil, 255*32+1); err == nil {
		t.Fatal("oversized HKDF output accepted")
	}
}

func TestHKDFDeterministicAndContextSeparated(t *testing.T) {
	a, _ := HKDF([]byte("ikm"), []byte("s"), []byte("ctx1"), 32)
	b, _ := HKDF([]byte("ikm"), []byte("s"), []byte("ctx1"), 32)
	c, _ := HKDF([]byte("ikm"), []byte("s"), []byte("ctx2"), 32)
	if !bytes.Equal(a, b) {
		t.Fatal("HKDF not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different info produced identical output")
	}
}

func TestHKDFPrefixConsistency(t *testing.T) {
	// RFC 5869: output for length n is a prefix of output for length m>n.
	long, _ := HKDF([]byte("ikm"), []byte("s"), []byte("i"), 64)
	short, _ := HKDF([]byte("ikm"), []byte("s"), []byte("i"), 16)
	if !bytes.Equal(long[:16], short) {
		t.Fatal("HKDF prefix property violated")
	}
}

func TestDeriveKeyLabels(t *testing.T) {
	root := testKey(9)
	seal, err := DeriveKey(root, "seal")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := DeriveKey(root, "fs")
	if err != nil {
		t.Fatal(err)
	}
	if seal == fs {
		t.Fatal("distinct labels derived the same key")
	}
	seal2, _ := DeriveKey(root, "seal")
	if seal != seal2 {
		t.Fatal("DeriveKey not deterministic")
	}
}

func TestStreamCipherRoundTripAndBlockSeparation(t *testing.T) {
	k := testKey(5)
	enc, err := StreamCipher(k, "stdout", 0)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("record payload")
	ct := make([]byte, len(pt))
	enc.XORKeyStream(ct, pt)

	dec, _ := StreamCipher(k, "stdout", 0)
	got := make([]byte, len(ct))
	dec.XORKeyStream(got, ct)
	if !bytes.Equal(got, pt) {
		t.Fatal("stream round trip failed")
	}

	other, _ := StreamCipher(k, "stdout", 1)
	ct2 := make([]byte, len(pt))
	other.XORKeyStream(ct2, pt)
	if bytes.Equal(ct, ct2) {
		t.Fatal("different blocks produced identical keystream")
	}
}

func TestDigest(t *testing.T) {
	d := Sum([]byte("abc"))
	if d.IsZero() {
		t.Fatal("digest of data is zero")
	}
	var zero Digest
	if !zero.IsZero() {
		t.Fatal("zero digest not reported zero")
	}
	if d.String()[:7] != "sha256:" {
		t.Fatalf("digest string %q missing prefix", d.String())
	}
}

func TestPropSealOpenRoundTrip(t *testing.T) {
	box, _ := NewBox(testKey(11))
	f := func(pt, aad []byte) bool {
		sealed, err := box.Seal(pt, aad)
		if err != nil {
			return false
		}
		got, err := box.Open(sealed, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMACRejectsBitFlips(t *testing.T) {
	k := testKey(12)
	f := func(data []byte, idx uint16, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		tag := MAC(k, data)
		mut := append([]byte(nil), data...)
		mut[int(idx)%len(mut)] ^= 1 << (bit % 8)
		if bytes.Equal(mut, data) {
			return true
		}
		return !VerifyMAC(k, mut, tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal1KiB(b *testing.B) {
	box, _ := NewBox(testKey(1))
	pt := bytes.Repeat([]byte{0xAB}, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := box.Seal(pt, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHKDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := HKDF([]byte("ikm"), []byte("salt"), []byte("info"), 32); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSealAppendReusesBuffer(t *testing.T) {
	box, err := NewBox(testKey(9))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 1024)
	sealed, err := box.SealAppend(buf, []byte("payload"), []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	if &sealed[0] != &buf[:1][0] {
		t.Fatal("SealAppend reallocated despite sufficient capacity")
	}
	pt, err := box.Open(sealed, []byte("aad"))
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "payload" {
		t.Fatalf("roundtrip = %q", pt)
	}
	// Appending after a prefix keeps the prefix intact.
	prefixed, err := box.SealAppend([]byte("hdr|"), []byte("p2"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(prefixed[:4]) != "hdr|" {
		t.Fatal("prefix clobbered")
	}
	if _, err := box.Open(prefixed[4:], nil); err != nil {
		t.Fatal(err)
	}
}

func TestCachedBoxInterns(t *testing.T) {
	a, err := CachedBox(testKey(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedBox(testKey(7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same key produced distinct cached boxes")
	}
	c, err := CachedBox(testKey(8))
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("distinct keys shared a cached box")
	}
	sealed, err := a.Seal([]byte("x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(sealed, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScratchPoolRoundtrip(t *testing.T) {
	buf := GetScratch()
	if len(buf) != 0 {
		t.Fatalf("scratch not empty: %d", len(buf))
	}
	buf = append(buf, []byte("transient")...)
	PutScratch(buf)
	again := GetScratch()
	if len(again) != 0 {
		t.Fatalf("recycled scratch not reset: %d", len(again))
	}
	PutScratch(again)
	PutScratch(nil) // must not panic
}
