package genpack

import (
	"math/rand"
	"sync"
)

// Monitor is GenPack's runtime monitoring component: it samples the actual
// resource consumption of containers while they sit in the nursery and
// learns per-container profiles (EWMA + observed peak). The scheduler uses
// the learned profile, with a safety margin, as the container's
// reservation after promotion — converting the gap between declared and
// actual demand into packing density, which is where a large share of
// GenPack's savings comes from.
type Monitor struct {
	// Alpha is the EWMA smoothing factor.
	Alpha float64
	// Margin is the safety factor applied over the observed peak.
	Margin float64

	mu       sync.Mutex
	profiles map[int]*profile
}

type profile struct {
	ewma Resources
	peak Resources
	n    int
}

// NewMonitor returns a monitor with a 10% safety margin.
func NewMonitor() *Monitor {
	return &Monitor{Alpha: 0.3, Margin: 1.10, profiles: make(map[int]*profile)}
}

// Sample records one observation of a container's actual usage. The noise
// source models measurement jitter; pass nil for exact samples.
func (m *Monitor) Sample(c *Container, rng *rand.Rand) {
	use := c.Usage()
	if rng != nil {
		j := 1 + 0.05*rng.NormFloat64()
		if j < 0.5 {
			j = 0.5
		}
		use = Resources{CPU: use.CPU * j, MemMB: use.MemMB * j}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.profiles[c.ID]
	if !ok {
		p = &profile{ewma: use, peak: use}
		m.profiles[c.ID] = p
	}
	p.n++
	p.ewma = Resources{
		CPU:   (1-m.Alpha)*p.ewma.CPU + m.Alpha*use.CPU,
		MemMB: (1-m.Alpha)*p.ewma.MemMB + m.Alpha*use.MemMB,
	}
	if use.CPU > p.peak.CPU {
		p.peak.CPU = use.CPU
	}
	if use.MemMB > p.peak.MemMB {
		p.peak.MemMB = use.MemMB
	}
}

// Samples returns how many observations exist for a container.
func (m *Monitor) Samples(id int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.profiles[id]; ok {
		return p.n
	}
	return 0
}

// Estimate returns the learned reservation for a container: observed peak
// plus the safety margin, never above the declared demand (a container
// may burst to what it asked for) and never below a floor that avoids
// zero reservations. ok is false when no samples exist yet.
func (m *Monitor) Estimate(c *Container) (Resources, bool) {
	m.mu.Lock()
	p, ok := m.profiles[c.ID]
	m.mu.Unlock()
	if !ok || p.n == 0 {
		return Resources{}, false
	}
	est := Resources{CPU: p.peak.CPU * m.Margin, MemMB: p.peak.MemMB * m.Margin}
	if est.CPU > c.Demand.CPU {
		est.CPU = c.Demand.CPU
	}
	if est.MemMB > c.Demand.MemMB {
		est.MemMB = c.Demand.MemMB
	}
	const floor = 0.05
	if est.CPU < floor {
		est.CPU = floor
	}
	if est.MemMB < 1 {
		est.MemMB = 1
	}
	return est, true
}

// Forget drops a container's profile (on completion).
func (m *Monitor) Forget(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.profiles, id)
}
