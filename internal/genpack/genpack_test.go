package genpack

import (
	"testing"
	"testing/quick"
)

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 2, MemMB: 1024}
	b := Resources{CPU: 1, MemMB: 512}
	if got := a.Add(b); got.CPU != 3 || got.MemMB != 1536 {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got.CPU != 1 || got.MemMB != 512 {
		t.Fatalf("Sub = %+v", got)
	}
	if !b.Fits(a) || a.Fits(b) {
		t.Fatal("Fits wrong")
	}
}

func TestServerPlaceRemove(t *testing.T) {
	s := &Server{ID: 1, Capacity: Resources{CPU: 4, MemMB: 8192}, Pidle: 100, Pmax: 200}
	c1 := &Container{ID: 1, Demand: Resources{CPU: 2, MemMB: 4096}}
	c2 := &Container{ID: 2, Demand: Resources{CPU: 3, MemMB: 1024}}
	if !s.place(c1) {
		t.Fatal("placement failed")
	}
	if !s.On() {
		t.Fatal("server not powered after placement")
	}
	if s.place(c2) {
		t.Fatal("over-capacity placement accepted")
	}
	if s.Utilization() != 0.5 {
		t.Fatalf("Utilization = %f", s.Utilization())
	}
	if s.Power() != 150 {
		t.Fatalf("Power = %f, want 150 (idle 100 + 50%% dynamic)", s.Power())
	}
	s.remove(c1)
	if s.Count() != 0 || s.Used().CPU != 0 {
		t.Fatal("remove did not release resources")
	}
}

func TestPowerModel(t *testing.T) {
	s := &Server{Capacity: Resources{CPU: 10, MemMB: 1}, Pidle: 100, Pmax: 200}
	if s.Power() != 0 {
		t.Fatal("powered-off server draws power")
	}
	s.on = true
	if s.Power() != 100 {
		t.Fatalf("idle draw = %f, want 100", s.Power())
	}
	s.trueUsed = Resources{CPU: 10} // power follows actual usage
	if s.Power() != 200 {
		t.Fatalf("full draw = %f, want 200", s.Power())
	}
}

func TestNewClusterGenerations(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 100})
	n := len(c.Generation(Nursery))
	y := len(c.Generation(Young))
	o := len(c.Generation(Old))
	if n+y+o != 100 {
		t.Fatalf("generations do not partition: %d+%d+%d", n, y, o)
	}
	if n != 10 || y != 30 || o != 60 {
		t.Fatalf("default shares: nursery=%d young=%d old=%d", n, y, o)
	}
}

func TestGenPackPlacesInNurseryFirst(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 20})
	g := NewGenPack()
	ctr := &Container{ID: 1, Demand: Resources{CPU: 1, MemMB: 1024}}
	if err := g.Place(c, ctr); err != nil {
		t.Fatal(err)
	}
	if ctr.server.Gen != Nursery {
		t.Fatalf("new container placed in %v, want nursery", ctr.server.Gen)
	}
}

func TestGenPackPromotions(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 20})
	g := NewGenPack()
	ctr := &Container{ID: 1, Demand: Resources{CPU: 1, MemMB: 1024}, Lifetime: 1 << 30}
	if err := g.Place(c, ctr); err != nil {
		t.Fatal(err)
	}
	ctr.Age = g.NurseryTicks
	g.Tick(c)
	if ctr.server.Gen != Young {
		t.Fatalf("after nursery window container in %v, want young", ctr.server.Gen)
	}
	ctr.Age = g.OldTicks
	g.Tick(c)
	if ctr.server.Gen != Old {
		t.Fatalf("after old window container in %v, want old", ctr.server.Gen)
	}
	if g.Migrations() != 2 {
		t.Fatalf("Migrations = %d, want 2", g.Migrations())
	}
}

func TestSweepPowersDownDrainedServers(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 10})
	g := NewGenPack()
	ctr := &Container{ID: 1, Demand: Resources{CPU: 1, MemMB: 512}}
	if err := g.Place(c, ctr); err != nil {
		t.Fatal(err)
	}
	srv := ctr.server
	srv.remove(ctr)
	g.Tick(c)
	if srv.On() {
		t.Fatal("drained server still powered")
	}
}

func TestSpreadKeepsAllServersOn(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 10})
	s := &SpreadScheduler{}
	s.Tick(c)
	if c.PoweredOn() != 10 {
		t.Fatalf("PoweredOn = %d, want 10", c.PoweredOn())
	}
}

func TestSpreadBalances(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 4})
	s := &SpreadScheduler{}
	for i := 0; i < 4; i++ {
		ctr := &Container{ID: i, Demand: Resources{CPU: 1, MemMB: 512}}
		if err := s.Place(c, ctr); err != nil {
			t.Fatal(err)
		}
	}
	for _, srv := range c.Servers {
		if srv.Count() != 1 {
			t.Fatalf("spread placed %d on server %d, want 1 each", srv.Count(), srv.ID)
		}
	}
}

func TestClusterFull(t *testing.T) {
	c := NewCluster(ClusterConfig{Servers: 1, Capacity: Resources{CPU: 1, MemMB: 1024}})
	g := NewGenPack()
	if err := g.Place(c, &Container{ID: 1, Demand: Resources{CPU: 1, MemMB: 512}}); err != nil {
		t.Fatal(err)
	}
	if err := g.Place(c, &Container{ID: 2, Demand: Resources{CPU: 1, MemMB: 512}}); err == nil {
		t.Fatal("over-committed cluster accepted container")
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := GenerateTrace(DefaultTrace(7))
	b := GenerateTrace(DefaultTrace(7))
	if len(a) != len(b) {
		t.Fatal("same seed, different trace length")
	}
	for i := range a {
		if a[i].Tick != b[i].Tick || a[i].Container.Demand != b[i].Container.Demand ||
			a[i].Container.Lifetime != b[i].Container.Lifetime {
			t.Fatalf("trace diverged at %d", i)
		}
	}
}

func TestTraceMix(t *testing.T) {
	cfg := DefaultTrace(3)
	trace := GenerateTrace(cfg)
	if len(trace) < int(cfg.Ticks*int64(cfg.ArrivalsPerTick))/2 {
		t.Fatalf("trace suspiciously short: %d arrivals", len(trace))
	}
	long := 0
	for _, a := range trace {
		if a.Container.Lifetime > int64(cfg.BatchTicks*5) {
			long++
		}
	}
	frac := float64(long) / float64(len(trace))
	if frac < 0.05 || frac > 0.30 {
		t.Fatalf("long-lived fraction %.2f outside plausible band", frac)
	}
}

func TestSimulateConservesContainers(t *testing.T) {
	cfg := DefaultTrace(5)
	cfg.Ticks = 300
	trace := GenerateTrace(cfg)
	cl := NewCluster(ClusterConfig{Servers: 100})
	res := Simulate(cl, NewGenPack(), trace, cfg.Ticks)
	// Everything placed either completed or is still running at horizon.
	stillRunning := 0
	for _, s := range cl.Servers {
		stillRunning += s.Count()
	}
	if res.CompletedOK+res.Rejected+stillRunning != len(trace) {
		t.Fatalf("containers not conserved: %d completed + %d rejected + %d running != %d arrivals",
			res.CompletedOK, res.Rejected, stillRunning, len(trace))
	}
}

func TestCapacityInvariantUnderSimulation(t *testing.T) {
	cfg := DefaultTrace(11)
	cfg.Ticks = 200
	for _, sched := range []Scheduler{NewGenPack(), &FirstFitScheduler{}, &SpreadScheduler{}} {
		cl := NewCluster(ClusterConfig{Servers: 60})
		Simulate(cl, sched, GenerateTrace(cfg), cfg.Ticks)
		for _, s := range cl.Servers {
			if !s.Used().Fits(s.Capacity) {
				t.Fatalf("%s: server %d over capacity: %+v > %+v", sched.Name(), s.ID, s.Used(), s.Capacity)
			}
			if s.Used().CPU < -1e-6 || s.Used().MemMB < -1e-6 {
				t.Fatalf("%s: server %d negative usage %+v", sched.Name(), s.ID, s.Used())
			}
		}
	}
}

func TestEnergyOrdering(t *testing.T) {
	// Qualitative shape from the GenPack evaluation: genpack beats the
	// random and spread strategies clearly, and is within a few percent
	// of an idealised first-fit binpacker (which GenPack matches on
	// energy while additionally isolating churn from services).
	results := EnergyExperiment(ClusterConfig{Servers: 100}, DefaultTrace(42))
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	gp, ff, rnd, sp := byName["genpack"], byName["first-fit"], byName["random"], byName["spread"]
	if gp.EnergyWh >= rnd.EnergyWh {
		t.Fatalf("genpack (%.0f Wh) not below random (%.0f Wh)", gp.EnergyWh, rnd.EnergyWh)
	}
	if rnd.EnergyWh >= sp.EnergyWh {
		t.Fatalf("random (%.0f Wh) not below spread (%.0f Wh)", rnd.EnergyWh, sp.EnergyWh)
	}
	if gp.EnergyWh > ff.EnergyWh*1.05 {
		t.Fatalf("genpack (%.0f Wh) more than 5%% above ideal binpack (%.0f Wh)", gp.EnergyWh, ff.EnergyWh)
	}
	if gp.Rejected > len(GenerateTrace(DefaultTrace(42)))/100 {
		t.Fatalf("genpack rejected %d containers — savings bought with rejections", gp.Rejected)
	}
}

func TestEnergySavingsNearPaperClaim(t *testing.T) {
	// §VI: "up to 23% energy savings are possible for typical data-center
	// workloads". Accept a band around the claim.
	results := EnergyExperiment(ClusterConfig{Servers: 100}, DefaultTrace(42))
	var gp, sp Result
	for _, r := range results {
		switch r.Policy {
		case "genpack":
			gp = r
		case "spread":
			sp = r
		}
	}
	s := Savings(gp, sp)
	if s < 0.15 || s > 0.45 {
		t.Fatalf("genpack vs spread savings %.1f%% outside the plausible band around the 23%% claim", 100*s)
	}
}

func TestGenPackRaisesUtilization(t *testing.T) {
	results := EnergyExperiment(ClusterConfig{Servers: 100}, DefaultTrace(9))
	var gp, sp Result
	for _, r := range results {
		switch r.Policy {
		case "genpack":
			gp = r
		case "spread":
			sp = r
		}
	}
	if gp.MeanUtilization <= sp.MeanUtilization {
		t.Fatalf("genpack mean utilisation %.2f not above spread %.2f", gp.MeanUtilization, sp.MeanUtilization)
	}
}

func TestPropPlacementNeverExceedsCapacity(t *testing.T) {
	f := func(cpus []uint8) bool {
		cl := NewCluster(ClusterConfig{Servers: 5, Capacity: Resources{CPU: 8, MemMB: 16384}})
		g := NewGenPack()
		for i, v := range cpus {
			c := &Container{ID: i, Demand: Resources{CPU: float64(v%9) + 0.5, MemMB: 1024}}
			_ = g.Place(cl, c) // rejection is fine; violation is not
		}
		for _, s := range cl.Servers {
			if !s.Used().Fits(s.Capacity) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
