package genpack

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"securecloud/internal/sim"
)

// TraceConfig parameterises the synthetic data-centre workload: a mix of
// short batch jobs and long-running services, which is the population
// structure the generational hypothesis exploits.
type TraceConfig struct {
	Seed int64
	// Ticks is the simulated horizon (one tick = one scheduling epoch,
	// nominally a minute).
	Ticks int64
	// ArrivalsPerTick is the mean Poisson arrival rate.
	ArrivalsPerTick float64
	// LongLivedFraction of arrivals are services; the rest are batch jobs.
	LongLivedFraction float64
	// BatchTicks / ServiceTicks are mean lifetimes (geometric).
	BatchTicks   float64
	ServiceTicks float64
	// MeanCPU / MeanMemMB size the demand distribution.
	MeanCPU   float64
	MeanMemMB float64
}

// DefaultTrace models the paper's "typical data-center workloads":
// mostly short analytics batches plus a persistent service population,
// at an offered load that keeps a spread cluster around 50-60% busy.
func DefaultTrace(seed int64) TraceConfig {
	return TraceConfig{
		Seed:              seed,
		Ticks:             1440, // one simulated day of minutes
		ArrivalsPerTick:   5.5,
		LongLivedFraction: 0.15,
		BatchTicks:        30,
		ServiceTicks:      600,
		MeanCPU:           2.0,
		MeanMemMB:         4096,
	}
}

// Arrival is one trace entry.
type Arrival struct {
	Tick      int64
	Container *Container
}

// GenerateTrace materialises a deterministic arrival trace.
func GenerateTrace(cfg TraceConfig) []Arrival {
	rng := sim.NewRand(cfg.Seed)
	var out []Arrival
	id := 0
	for t := int64(0); t < cfg.Ticks; t++ {
		n := poisson(rng, cfg.ArrivalsPerTick)
		for i := 0; i < n; i++ {
			id++
			life := geometric(rng, cfg.BatchTicks)
			if rng.Float64() < cfg.LongLivedFraction {
				life = geometric(rng, cfg.ServiceTicks)
			}
			cpu := 0.5 + rng.ExpFloat64()*cfg.MeanCPU
			if cpu > 8 {
				cpu = 8
			}
			mem := 512 + rng.ExpFloat64()*cfg.MeanMemMB
			// Containers typically use only part of what they request;
			// GenPack's monitor exists to discover this gap.
			utilization := 0.45 + 0.45*rng.Float64()
			out = append(out, Arrival{
				Tick: t,
				Container: &Container{
					ID:         id,
					Demand:     Resources{CPU: cpu, MemMB: mem},
					Arrival:    t,
					Lifetime:   life,
					UtilFactor: utilization,
				},
			})
		}
	}
	return out
}

func poisson(rng *rand.Rand, mean float64) int {
	// Knuth's algorithm; fine for small means.
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func geometric(rng *rand.Rand, mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	v := int64(rng.ExpFloat64()*mean) + 1
	return v
}

// Result summarises one simulation run.
type Result struct {
	Policy string
	// EnergyWh is the total energy over the horizon in watt-hours
	// (ticks are minutes).
	EnergyWh float64
	// PeakServers / MeanServers are powered-server statistics.
	PeakServers int
	MeanServers float64
	// MeanUtilization is the CPU utilisation averaged over powered
	// servers and time.
	MeanUtilization float64
	// Rejected counts arrivals no server could host.
	Rejected int
	// Migrations counts generation promotions (GenPack only).
	Migrations int
	// CompletedOK counts containers that ran to completion.
	CompletedOK int
	// Violations counts server-ticks where actual usage exceeded
	// capacity — the QoS cost of over-aggressive reservations.
	Violations int
}

// Simulate runs a trace against a cluster under a scheduler and returns
// the energy accounting.
func Simulate(cluster *Cluster, sched Scheduler, trace []Arrival, ticks int64) Result {
	res := Result{Policy: sched.Name()}
	live := make(map[int]*Container)
	next := 0
	var utilSum float64
	var utilSamples int64
	var serverSum float64
	gp, _ := sched.(*GenPackScheduler)
	var sampleRng *rand.Rand
	if gp != nil && gp.Monitor != nil {
		sampleRng = sim.NewRand(0x6e5a)
	}

	for t := int64(0); t < ticks; t++ {
		// 1. Departures.
		for id, ctr := range live {
			ctr.Lifetime--
			ctr.Age++
			if ctr.Lifetime <= 0 {
				if ctr.server != nil {
					ctr.server.remove(ctr)
				}
				delete(live, id)
				res.CompletedOK++
				if gp != nil && gp.Monitor != nil {
					gp.Monitor.Forget(id)
				}
			}
		}
		// 2. Arrivals.
		for next < len(trace) && trace[next].Tick == t {
			ctr := trace[next].Container
			if err := sched.Place(cluster, ctr); err != nil {
				res.Rejected++
			} else {
				live[ctr.ID] = ctr
			}
			next++
		}
		// 2b. Runtime monitoring: profile nursery residents.
		if gp != nil && gp.Monitor != nil {
			for _, s := range cluster.Generation(Nursery) {
				for _, pl := range s.containers {
					gp.Monitor.Sample(pl.c, sampleRng)
				}
			}
		}
		// 3. Policy tick (promotion, consolidation, power management).
		sched.Tick(cluster)
		// 3b. QoS accounting.
		for _, s := range cluster.Servers {
			if s.Overcommitted() {
				res.Violations++
			}
		}
		// 4. Accounting: one minute at the current draw.
		res.EnergyWh += cluster.PowerDraw() / 60.0
		on := cluster.PoweredOn()
		serverSum += float64(on)
		if on > res.PeakServers {
			res.PeakServers = on
		}
		for _, s := range cluster.Servers {
			if s.on {
				utilSum += s.Utilization()
				utilSamples++
			}
		}
	}
	res.MeanServers = serverSum / float64(ticks)
	if utilSamples > 0 {
		res.MeanUtilization = utilSum / float64(utilSamples)
	}
	if gp, ok := sched.(*GenPackScheduler); ok {
		res.Migrations = gp.Migrations()
	}
	return res
}

// EnergyExperiment runs the paper's §VI comparison: the same trace under
// GenPack and the two baselines on identical clusters.
func EnergyExperiment(clusterCfg ClusterConfig, traceCfg TraceConfig) []Result {
	policies := []Scheduler{NewGenPack(), &FirstFitScheduler{}, NewRandom(traceCfg.Seed), &SpreadScheduler{}}
	var out []Result
	for _, p := range policies {
		// Fresh cluster and a freshly generated (identical, same seed)
		// trace per policy: Simulate mutates containers.
		cl := NewCluster(clusterCfg)
		tr := GenerateTrace(traceCfg)
		out = append(out, Simulate(cl, p, tr, traceCfg.Ticks))
	}
	return out
}

// Savings returns the relative energy saving of a versus baseline b.
func Savings(a, b Result) float64 {
	if b.EnergyWh == 0 {
		return 0
	}
	return 1 - a.EnergyWh/b.EnergyWh
}

// WriteResults renders the experiment as the table the paper's claim
// summarises.
func WriteResults(w io.Writer, results []Result) {
	fmt.Fprintf(w, "# GenPack energy experiment (paper §VI: up to 23%% savings)\n")
	fmt.Fprintf(w, "%-10s %-12s %-10s %-12s %-10s %-10s %-11s %-10s\n",
		"policy", "energy(Wh)", "peak-on", "mean-on", "mean-util", "rejected", "migrations", "violations")
	var spread *Result
	for i := range results {
		if results[i].Policy == "spread" {
			spread = &results[i]
		}
	}
	for _, r := range results {
		fmt.Fprintf(w, "%-10s %-12.0f %-10d %-12.1f %-10.2f %-10d %-11d %-10d\n",
			r.Policy, r.EnergyWh, r.PeakServers, r.MeanServers, r.MeanUtilization,
			r.Rejected, r.Migrations, r.Violations)
	}
	if spread != nil {
		for _, r := range results {
			if r.Policy != "spread" {
				fmt.Fprintf(w, "savings(%s vs spread) = %.1f%%\n", r.Policy, 100*Savings(r, *spread))
			}
		}
	}
}
