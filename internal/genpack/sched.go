package genpack

import (
	"errors"
	"math/rand"
)

// Scheduler places containers on cluster servers and reacts to the
// monitoring tick.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Place assigns a newly arrived container. It returns an error when
	// the cluster cannot host it.
	Place(c *Cluster, ctr *Container) error
	// Tick runs the policy's periodic work (promotions, consolidation,
	// power management).
	Tick(c *Cluster)
}

// ErrClusterFull is returned when no server can host a container.
var ErrClusterFull = errors.New("genpack: no server can host container")

// ---- GenPack ----

// GenPackScheduler implements the generational policy: containers start in
// the nursery under heavy monitoring; at NurseryTicks of age they move to
// the young generation; at OldTicks they are consolidated into the old
// generation, which is packed by fullest-first first-fit so partially
// empty servers drain. Empty servers are powered off each tick.
type GenPackScheduler struct {
	// NurseryTicks is the profiling period before promotion to young.
	NurseryTicks int64
	// OldTicks is the age at which a container counts as long-running.
	OldTicks int64
	// Monitor, when set, provides learned usage profiles: promotions out
	// of the nursery re-reserve containers at their observed footprint
	// instead of their declared demand.
	Monitor *Monitor

	migrations int
}

// NewGenPack returns the scheduler with the paper's monitoring windows
// and runtime monitoring enabled.
func NewGenPack() *GenPackScheduler {
	return &GenPackScheduler{NurseryTicks: 5, OldTicks: 60, Monitor: NewMonitor()}
}

// Name implements Scheduler.
func (g *GenPackScheduler) Name() string { return "genpack" }

// Migrations returns the number of generation promotions performed.
func (g *GenPackScheduler) Migrations() int { return g.migrations }

// Place implements Scheduler: new arrivals go to the nursery (fullest-
// first), overflowing into young, then old.
func (g *GenPackScheduler) Place(c *Cluster, ctr *Container) error {
	for _, gen := range []Generation{Nursery, Young, Old} {
		if placeFirstFit(byUsedDescending(c.Generation(gen)), ctr) {
			return nil
		}
	}
	return ErrClusterFull
}

// Tick implements Scheduler: promote aged containers and power down
// drained servers.
func (g *GenPackScheduler) Tick(c *Cluster) {
	// Collect promotions first; mutating placements while iterating the
	// per-server maps would skip entries.
	var toYoung, toOld []*Container
	for _, s := range c.Servers {
		for _, pl := range s.containers {
			ctr := pl.c
			switch s.Gen {
			case Nursery:
				if ctr.Age >= g.NurseryTicks {
					toYoung = append(toYoung, ctr)
				}
			case Young:
				if ctr.Age >= g.OldTicks {
					toOld = append(toOld, ctr)
				}
			}
		}
	}
	for _, ctr := range toYoung {
		// Leaving the nursery: adopt the monitor's learned reservation.
		if g.Monitor != nil {
			if est, ok := g.Monitor.Estimate(ctr); ok {
				ctr.Reserved = est
			}
		}
		g.migrate(c, ctr, Young, Old)
	}
	for _, ctr := range toOld {
		g.migrate(c, ctr, Old, Young)
	}
	c.sweepIdle()
}

// migrate moves a container to the preferred generation, falling back to
// the alternative, keeping it in place when neither has room.
func (g *GenPackScheduler) migrate(c *Cluster, ctr *Container, prefer, fallback Generation) {
	from := ctr.server
	if from == nil {
		return
	}
	from.remove(ctr)
	if placeFirstFit(byUsedDescending(c.Generation(prefer)), ctr) ||
		placeFirstFit(byUsedDescending(c.Generation(fallback)), ctr) {
		g.migrations++
		return
	}
	// No room anywhere better: put it back.
	from.place(ctr)
}

// ---- Baselines ----

// SpreadScheduler balances load across all servers (Docker Swarm's
// "spread" strategy): every server stays powered and lightly loaded. This
// is the conventional-deployment baseline of the paper's energy claim.
type SpreadScheduler struct{ next int }

// Name implements Scheduler.
func (s *SpreadScheduler) Name() string { return "spread" }

// Place implements Scheduler: emptiest server first.
func (s *SpreadScheduler) Place(c *Cluster, ctr *Container) error {
	servers := append([]*Server(nil), c.Servers...)
	// Emptiest first; stable by ID.
	for i := 0; i < len(servers); i++ {
		for j := i + 1; j < len(servers); j++ {
			if servers[j].used.CPU < servers[i].used.CPU ||
				(servers[j].used.CPU == servers[i].used.CPU && servers[j].ID < servers[i].ID) {
				servers[i], servers[j] = servers[j], servers[i]
			}
		}
	}
	if placeFirstFit(servers, ctr) {
		return nil
	}
	return ErrClusterFull
}

// Tick implements Scheduler: spread keeps all servers on (the
// conventional always-on operating point).
func (s *SpreadScheduler) Tick(c *Cluster) {
	for _, srv := range c.Servers {
		srv.on = true
	}
}

// FirstFitScheduler packs containers into the lowest-numbered server with
// room — consolidating, but without generations: long-lived containers
// pin servers that can then never drain.
type FirstFitScheduler struct{}

// Name implements Scheduler.
func (f *FirstFitScheduler) Name() string { return "first-fit" }

// Place implements Scheduler.
func (f *FirstFitScheduler) Place(c *Cluster, ctr *Container) error {
	if placeFirstFit(c.Servers, ctr) {
		return nil
	}
	return ErrClusterFull
}

// Tick implements Scheduler: powers down drained servers (first-fit gets
// the same power management as GenPack; the difference is placement).
func (f *FirstFitScheduler) Tick(c *Cluster) { c.sweepIdle() }

// RandomScheduler places containers on a random server with room (Docker
// Swarm's "random" strategy), with idle power-down. Long-lived services
// end up pinning servers all over the cluster — the fragmentation failure
// mode GenPack's generations avoid.
type RandomScheduler struct {
	rng *rand.Rand
}

// NewRandom returns a seeded random-placement baseline.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (r *RandomScheduler) Name() string { return "random" }

// Place implements Scheduler.
func (r *RandomScheduler) Place(c *Cluster, ctr *Container) error {
	perm := r.rng.Perm(len(c.Servers))
	for _, i := range perm {
		if c.Servers[i].place(ctr) {
			return nil
		}
	}
	return ErrClusterFull
}

// Tick implements Scheduler.
func (r *RandomScheduler) Tick(c *Cluster) { c.sweepIdle() }

// placeFirstFit puts ctr on the first server in order that fits it.
func placeFirstFit(servers []*Server, ctr *Container) bool {
	for _, s := range servers {
		if s.place(ctr) {
			return true
		}
	}
	return false
}
