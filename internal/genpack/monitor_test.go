package genpack

import (
	"testing"

	"securecloud/internal/sim"
)

func TestMonitorLearnsActualUsage(t *testing.T) {
	m := NewMonitor()
	c := &Container{ID: 1, Demand: Resources{CPU: 4, MemMB: 8192}, UtilFactor: 0.5}
	for i := 0; i < 20; i++ {
		m.Sample(c, nil) // exact samples
	}
	est, ok := m.Estimate(c)
	if !ok {
		t.Fatal("no estimate after sampling")
	}
	// Actual usage is 2 CPU; estimate = peak * 1.10 = 2.2, well below the
	// declared 4.
	if est.CPU < 2 || est.CPU > 2.5 {
		t.Fatalf("estimate CPU = %f, want ~2.2", est.CPU)
	}
	if est.CPU >= c.Demand.CPU {
		t.Fatal("monitored estimate not tighter than declaration")
	}
}

func TestMonitorEstimateCappedAtDeclaration(t *testing.T) {
	m := NewMonitor()
	c := &Container{ID: 1, Demand: Resources{CPU: 2, MemMB: 1024}, UtilFactor: 1.0}
	rng := sim.NewRand(1)
	for i := 0; i < 50; i++ {
		m.Sample(c, rng) // jittered samples can exceed the mean
	}
	est, _ := m.Estimate(c)
	if est.CPU > c.Demand.CPU {
		t.Fatalf("estimate %f exceeds declared demand %f", est.CPU, c.Demand.CPU)
	}
}

func TestMonitorNoSamplesNoEstimate(t *testing.T) {
	m := NewMonitor()
	c := &Container{ID: 9, Demand: Resources{CPU: 1, MemMB: 1}}
	if _, ok := m.Estimate(c); ok {
		t.Fatal("estimate without samples")
	}
}

func TestMonitorForget(t *testing.T) {
	m := NewMonitor()
	c := &Container{ID: 3, Demand: Resources{CPU: 1, MemMB: 64}}
	m.Sample(c, nil)
	if m.Samples(3) != 1 {
		t.Fatal("sample not recorded")
	}
	m.Forget(3)
	if m.Samples(3) != 0 {
		t.Fatal("profile survived Forget")
	}
}

func TestReservationFollowsMonitorAfterPromotion(t *testing.T) {
	cl := NewCluster(ClusterConfig{Servers: 20})
	g := NewGenPack()
	c := &Container{ID: 1, Demand: Resources{CPU: 4, MemMB: 4096}, UtilFactor: 0.5, Lifetime: 1 << 30}
	if err := g.Place(cl, c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g.Monitor.Sample(c, nil)
	}
	c.Age = g.NurseryTicks
	g.Tick(cl)
	if c.server.Gen != Young {
		t.Fatalf("container in %v after nursery", c.server.Gen)
	}
	if c.Reserved == (Resources{}) || c.Reserved.CPU >= c.Demand.CPU {
		t.Fatalf("promotion did not tighten reservation: %+v", c.Reserved)
	}
}

func TestMonitoredPackingDenserThanDeclared(t *testing.T) {
	// With monitoring, a server fits more containers than declarations
	// alone would allow, without exceeding true capacity.
	s := &Server{ID: 1, Capacity: Resources{CPU: 8, MemMB: 1 << 20}}
	var placedDeclared int
	for i := 0; ; i++ {
		c := &Container{ID: i, Demand: Resources{CPU: 2, MemMB: 64}}
		if !s.place(c) {
			break
		}
		placedDeclared++
	}
	s2 := &Server{ID: 2, Capacity: Resources{CPU: 8, MemMB: 1 << 20}}
	var placedMonitored int
	for i := 0; ; i++ {
		c := &Container{ID: i, Demand: Resources{CPU: 2, MemMB: 64}, UtilFactor: 0.5,
			Reserved: Resources{CPU: 1.1, MemMB: 36}}
		if !s2.place(c) {
			break
		}
		placedMonitored++
	}
	if placedMonitored <= placedDeclared {
		t.Fatalf("monitored packing (%d) not denser than declared (%d)", placedMonitored, placedDeclared)
	}
	if s2.Overcommitted() {
		t.Fatal("monitored packing overcommitted true usage")
	}
}

func TestNoQoSViolationsInDefaultExperiment(t *testing.T) {
	results := EnergyExperiment(ClusterConfig{Servers: 100}, DefaultTrace(42))
	for _, r := range results {
		if r.Violations != 0 {
			t.Fatalf("%s: %d capacity violations", r.Policy, r.Violations)
		}
	}
}

func TestGenPackBeatsIdealBinpackWithMonitoring(t *testing.T) {
	results := EnergyExperiment(ClusterConfig{Servers: 100}, DefaultTrace(42))
	var gp, ff Result
	for _, r := range results {
		switch r.Policy {
		case "genpack":
			gp = r
		case "first-fit":
			ff = r
		}
	}
	if gp.EnergyWh >= ff.EnergyWh {
		t.Fatalf("monitored genpack (%.0f Wh) not below declared-demand binpack (%.0f Wh)",
			gp.EnergyWh, ff.EnergyWh)
	}
}
