// Package genpack implements GenPack (paper §IV, §VI; Havet et al.,
// IC2E '17): a scheduling and monitoring framework for container-based
// data centres that borrows the generational hypothesis from garbage
// collection. Servers are partitioned into generations — a nursery where
// new containers are profiled, a young generation for transient jobs, and
// an old generation where long-running services are packed tightly — so
// that whole servers drain and power off instead of idling at low
// utilisation. The paper claims up to 23% energy savings for typical
// data-centre workloads; the simulation in this package reproduces that
// experiment against spread and first-fit baselines.
package genpack

import (
	"fmt"
	"sort"
)

// Resources is a (CPU cores, memory MB) demand or capacity vector.
type Resources struct {
	CPU   float64
	MemMB float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, MemMB: r.MemMB + o.MemMB}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{CPU: r.CPU - o.CPU, MemMB: r.MemMB - o.MemMB}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU+1e-9 && r.MemMB <= c.MemMB+1e-9
}

// Generation labels a server group, in GC terminology.
type Generation int

// Server generations. Containers are born into the nursery, promoted to
// young once profiled, and to old once their longevity is established.
const (
	Nursery Generation = iota
	Young
	Old
)

func (g Generation) String() string {
	switch g {
	case Nursery:
		return "nursery"
	case Young:
		return "young"
	case Old:
		return "old"
	default:
		return fmt.Sprintf("Generation(%d)", int(g))
	}
}

// Container is one scheduled workload unit.
type Container struct {
	ID int
	// Demand is the *declared* (provisioned) resource request — what the
	// user asked for, typically conservative.
	Demand  Resources
	Arrival int64 // tick of arrival
	// Lifetime is the remaining duration in ticks (decremented by the
	// simulator; the scheduler cannot see it — it must infer longevity
	// from age, as GenPack's monitor does).
	Lifetime int64

	// UtilFactor is the fraction of the declared demand the container
	// actually uses (hidden from the scheduler; 0 means 1.0). GenPack's
	// monitoring exists to discover it.
	UtilFactor float64
	// Reserved is the scheduler's reservation for placement; zero means
	// "reserve the full declared demand". GenPack's monitor tightens it
	// after profiling.
	Reserved Resources

	// Age is ticks since arrival (maintained by the simulator; visible to
	// the scheduler — this is what runtime monitoring provides).
	Age int64

	server *Server
}

// Usage returns the container's actual resource consumption.
func (c *Container) Usage() Resources {
	f := c.UtilFactor
	if f == 0 {
		f = 1
	}
	return Resources{CPU: c.Demand.CPU * f, MemMB: c.Demand.MemMB * f}
}

// reservation returns what placement must account for.
func (c *Container) reservation() Resources {
	if c.Reserved == (Resources{}) {
		return c.Demand
	}
	return c.Reserved
}

// Server is one physical machine.
type Server struct {
	ID       int
	Capacity Resources
	Gen      Generation
	// Pidle and Pmax parameterise the linear power model; SPECpower-like
	// defaults are set by NewCluster.
	Pidle, Pmax float64

	on         bool
	used       Resources // reserved (placement view)
	trueUsed   Resources // actual usage (power view)
	containers map[int]placement
}

// placement pins the amounts booked at placement time, so removal releases
// exactly what was reserved even if the container's reservation was
// re-estimated meanwhile.
type placement struct {
	c        *Container
	reserved Resources
	usage    Resources
}

// On reports whether the server is powered.
func (s *Server) On() bool { return s.on }

// Used returns the currently reserved resources (the placement view).
func (s *Server) Used() Resources { return s.used }

// TrueUsed returns the actual consumption (the power view).
func (s *Server) TrueUsed() Resources { return s.trueUsed }

// Utilization returns actual CPU utilisation in [0,1] (the power-relevant
// axis): servers burn power for work done, not for reservations.
func (s *Server) Utilization() float64 {
	if s.Capacity.CPU == 0 {
		return 0
	}
	u := s.trueUsed.CPU / s.Capacity.CPU
	if u > 1 {
		u = 1
	}
	return u
}

// Overcommitted reports whether actual usage exceeds capacity — the QoS
// violation an over-aggressive monitor-driven reservation can cause.
func (s *Server) Overcommitted() bool {
	return !s.trueUsed.Fits(s.Capacity)
}

// Power returns the instantaneous draw in watts: the linear idle+dynamic
// model standard in data-centre energy studies. A powered-off server draws
// nothing.
func (s *Server) Power() float64 {
	if !s.on {
		return 0
	}
	return s.Pidle + (s.Pmax-s.Pidle)*s.Utilization()
}

// place assigns c to the server, reserving its reservation. It reports
// false when the reservation does not fit.
func (s *Server) place(c *Container) bool {
	res := c.reservation()
	if !s.used.Add(res).Fits(s.Capacity) {
		return false
	}
	if s.containers == nil {
		s.containers = make(map[int]placement)
	}
	use := c.Usage()
	s.containers[c.ID] = placement{c: c, reserved: res, usage: use}
	s.used = s.used.Add(res)
	s.trueUsed = s.trueUsed.Add(use)
	s.on = true
	c.server = s
	return true
}

// remove detaches c from the server, releasing exactly what was booked.
func (s *Server) remove(c *Container) {
	pl, ok := s.containers[c.ID]
	if !ok {
		return
	}
	delete(s.containers, c.ID)
	s.used = s.used.Sub(pl.reserved)
	s.trueUsed = s.trueUsed.Sub(pl.usage)
	c.server = nil
}

// Count returns the number of resident containers.
func (s *Server) Count() int { return len(s.containers) }

// Cluster is the set of servers under one scheduler.
type Cluster struct {
	Servers []*Server
}

// ClusterConfig sizes a homogeneous cluster.
type ClusterConfig struct {
	Servers  int
	Capacity Resources
	// Pidle/Pmax per server; zero takes the defaults (100 W / 200 W,
	// typical dual-socket SPECpower numbers of the paper's era).
	Pidle, Pmax float64
	// GenerationShare fixes the fraction of servers assigned to the
	// nursery and young generations (rest is old). Zeroes take defaults
	// (10% nursery, 30% young).
	NurseryShare, YoungShare float64
}

// NewCluster builds a cluster with servers partitioned into generations.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Servers <= 0 {
		cfg.Servers = 100
	}
	if cfg.Capacity == (Resources{}) {
		cfg.Capacity = Resources{CPU: 16, MemMB: 64 << 10}
	}
	if cfg.Pidle == 0 {
		cfg.Pidle = 100
	}
	if cfg.Pmax == 0 {
		cfg.Pmax = 200
	}
	if cfg.NurseryShare == 0 {
		cfg.NurseryShare = 0.10
	}
	if cfg.YoungShare == 0 {
		cfg.YoungShare = 0.30
	}
	c := &Cluster{}
	nNursery := int(float64(cfg.Servers) * cfg.NurseryShare)
	nYoung := int(float64(cfg.Servers) * cfg.YoungShare)
	if nNursery < 1 {
		nNursery = 1
	}
	if nYoung < 1 {
		nYoung = 1
	}
	for i := 0; i < cfg.Servers; i++ {
		gen := Old
		switch {
		case i < nNursery:
			gen = Nursery
		case i < nNursery+nYoung:
			gen = Young
		}
		c.Servers = append(c.Servers, &Server{
			ID: i, Capacity: cfg.Capacity, Gen: gen,
			Pidle: cfg.Pidle, Pmax: cfg.Pmax,
		})
	}
	return c
}

// Generation returns the servers of one generation.
func (c *Cluster) Generation(g Generation) []*Server {
	var out []*Server
	for _, s := range c.Servers {
		if s.Gen == g {
			out = append(out, s)
		}
	}
	return out
}

// PowerDraw returns the cluster's instantaneous draw in watts.
func (c *Cluster) PowerDraw() float64 {
	var w float64
	for _, s := range c.Servers {
		w += s.Power()
	}
	return w
}

// PoweredOn returns the number of powered servers.
func (c *Cluster) PoweredOn() int {
	n := 0
	for _, s := range c.Servers {
		if s.on {
			n++
		}
	}
	return n
}

// sweepIdle powers down servers with no containers.
func (c *Cluster) sweepIdle() {
	for _, s := range c.Servers {
		if s.on && len(s.containers) == 0 {
			s.on = false
		}
	}
}

// byUsedDescending orders servers by CPU in use, fullest first — the
// packing order that drains the emptiest servers.
func byUsedDescending(servers []*Server) []*Server {
	out := append([]*Server(nil), servers...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].used.CPU != out[j].used.CPU {
			return out[i].used.CPU > out[j].used.CPU
		}
		return out[i].ID < out[j].ID
	})
	return out
}
