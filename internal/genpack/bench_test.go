package genpack

import "testing"

func BenchmarkGenPackPlace(b *testing.B) {
	c := NewCluster(ClusterConfig{Servers: 100})
	g := NewGenPack()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctr := &Container{ID: i, Demand: Resources{CPU: 1, MemMB: 512}, Lifetime: 10}
		if err := g.Place(c, ctr); err != nil {
			// Cluster full: drain it and continue.
			b.StopTimer()
			for _, s := range c.Servers {
				for _, pl := range s.containers {
					s.remove(pl.c)
				}
			}
			b.StartTimer()
		}
	}
}

func BenchmarkSimulateDay(b *testing.B) {
	cfg := DefaultTrace(1)
	cfg.Ticks = 240 // four hours per iteration
	for i := 0; i < b.N; i++ {
		cl := NewCluster(ClusterConfig{Servers: 100})
		Simulate(cl, NewGenPack(), GenerateTrace(cfg), cfg.Ticks)
	}
}
