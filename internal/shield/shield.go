package shield

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

// CallMode selects how the shield crosses the enclave boundary.
type CallMode int

const (
	// ModeSync exits the enclave for every system call (one EEXIT/EENTER
	// pair each), like a naive libc inside an enclave.
	ModeSync CallMode = iota
	// ModeAsync places requests in a shared-memory queue serviced by host
	// threads while the enclave thread yields to SCONE's user-level
	// scheduler; no world switch is needed.
	ModeAsync
)

func (m CallMode) String() string {
	if m == ModeSync {
		return "sync"
	}
	return "async"
}

// MaxRecord bounds the size of any record the shield will accept from the
// host. Host-returned buffers beyond this are rejected before any copy,
// one of the shield's Iago-attack sanity checks.
const MaxRecord = 1 << 20

// ErrHostMisbehaved is returned when the untrusted host violates interface
// invariants (oversized returns, bad sequence, failed authentication).
var ErrHostMisbehaved = errors.New("shield: untrusted host misbehaved")

// queueSlotBytes models the shared-memory request/response slot size of the
// asynchronous interface (two cache lines: request descriptor + response).
const queueSlotBytes = 128

// Shield is the per-enclave system-call shield.
type Shield struct {
	enc  *enclave.Enclave
	host *Host
	mode CallMode

	// queueAddr is the simulated address of the async request queue in
	// untrusted memory; writes to it are charged to the enclave's view
	// (the enclave copies arguments out) without a world switch.
	untrusted *enclave.Memory
	queueAddr uint64
	queuePos  uint64

	mu      sync.Mutex
	streams map[int]*stream
	calls   uint64
}

// stream is the shield state of one protected file descriptor.
type stream struct {
	key      cryptbox.Key
	box      *cryptbox.Box
	label    string
	writeSeq uint64
	readSeq  uint64
}

// New builds a shield for enc over host in the given call mode.
func New(enc *enclave.Enclave, host *Host, mode CallMode) *Shield {
	p := enc.Platform()
	return &Shield{
		enc:       enc,
		host:      host,
		mode:      mode,
		untrusted: p.UntrustedMemory(),
		queueAddr: p.AllocUntrusted(64 * queueSlotBytes),
		streams:   make(map[int]*stream),
	}
}

// Mode returns the configured call mode.
func (s *Shield) Mode() CallMode { return s.mode }

// Calls returns the number of shielded calls issued.
func (s *Shield) Calls() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// crossBoundary charges the cost of getting one request to the host and its
// response back, according to the call mode.
func (s *Shield) crossBoundary(payload int) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	if s.mode == ModeSync {
		s.enc.OCall()
		return
	}
	// Async: the enclave thread writes the request descriptor and payload
	// into the untrusted queue and later reads the response slot. No world
	// switch; just (simulated) memory traffic.
	slot := s.queueAddr + (s.queuePos%64)*queueSlotBytes
	s.queuePos++
	s.enc.Memory().Access(slot, queueSlotBytes/2, true)
	if payload > 0 {
		s.enc.Memory().Access(slot, min(payload, queueSlotBytes/2), true)
	}
	s.enc.Memory().Access(slot+queueSlotBytes/2, queueSlotBytes/2, false)
}

// Open opens path through the shield. When key is non-nil the descriptor is
// protected: all records written through it are transparently encrypted and
// authenticated with a per-stream sequence number (freshness), and reads
// verify before any byte reaches application code.
func (s *Shield) Open(path string, key *cryptbox.Key) (int, error) {
	s.crossBoundary(len(path))
	fd, err := s.host.Open(path)
	if err != nil {
		return 0, err
	}
	if key != nil {
		box, err := cryptbox.NewBox(*key)
		if err != nil {
			return 0, err
		}
		s.mu.Lock()
		s.streams[fd] = &stream{key: *key, box: box, label: path}
		s.mu.Unlock()
	}
	return fd, nil
}

// seqAAD binds a record to its stream and position.
func seqAAD(label string, seq uint64) []byte {
	b := make([]byte, 0, len(label)+9)
	b = append(b, label...)
	b = append(b, '|')
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], seq)
	return append(b, n[:]...)
}

// Write sends data through fd. On protected descriptors the host only ever
// sees ciphertext.
func (s *Shield) Write(fd int, data []byte) (int, error) {
	if len(data) > MaxRecord {
		return 0, fmt.Errorf("%w: record of %d bytes exceeds limit", ErrHostMisbehaved, len(data))
	}
	s.mu.Lock()
	st := s.streams[fd]
	s.mu.Unlock()
	payload := data
	if st != nil {
		sealed, err := st.box.Seal(data, seqAAD(st.label, st.writeSeq))
		if err != nil {
			return 0, err
		}
		st.writeSeq++
		payload = sealed
	}
	s.crossBoundary(len(payload))
	if _, err := s.host.Write(fd, payload); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Read returns the next record from fd, verifying and decrypting protected
// streams. ok is false at end of stream.
func (s *Shield) Read(fd int) (data []byte, ok bool, err error) {
	s.crossBoundary(0)
	rec, ok, err := s.host.Read(fd)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	// Sanity checks before copying host memory into the enclave.
	if len(rec) > MaxRecord+64 {
		return nil, false, fmt.Errorf("%w: host returned %d-byte record", ErrHostMisbehaved, len(rec))
	}
	s.mu.Lock()
	st := s.streams[fd]
	s.mu.Unlock()
	if st == nil {
		return rec, true, nil
	}
	plain, err := st.box.Open(rec, seqAAD(st.label, st.readSeq))
	if err != nil {
		return nil, false, fmt.Errorf("%w: record %d of %s failed authentication",
			ErrHostMisbehaved, st.readSeq, st.label)
	}
	st.readSeq++
	return plain, true, nil
}

// Close closes fd through the shield.
func (s *Shield) Close(fd int) error {
	s.crossBoundary(0)
	s.mu.Lock()
	delete(s.streams, fd)
	s.mu.Unlock()
	return s.host.Close(fd)
}

// OpenRecord authenticates and decrypts one record of a protected stream
// outside the enclave — the counterpart a remote party holding the stream
// key (e.g. the SCONE client reading a container's encrypted stdout) uses.
func OpenRecord(key cryptbox.Key, label string, seq uint64, rec []byte) ([]byte, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	plain, err := box.Open(rec, seqAAD(label, seq))
	if err != nil {
		return nil, fmt.Errorf("%w: record %d of %s failed authentication", ErrHostMisbehaved, seq, label)
	}
	return plain, nil
}

// SealRecord produces a record a protected stream will accept at the given
// sequence number — the counterpart for feeding a container's encrypted
// stdin from outside.
func SealRecord(key cryptbox.Key, label string, seq uint64, data []byte) ([]byte, error) {
	box, err := cryptbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	return box.Seal(data, seqAAD(label, seq))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
