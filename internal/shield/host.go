// Package shield implements SCONE's shielded system-call interface (paper
// §IV): enclave code never issues system calls directly. Instead, calls go
// through a shield that (i) copies all memory-based arguments and return
// values across the enclave boundary with sanity checks, defending against
// a malicious OS (Iago attacks), (ii) transparently encrypts and
// authenticates all data flowing through protected file descriptors, and
// (iii) offers an asynchronous call path over shared-memory queues so
// enclave threads avoid the expensive world switch of a synchronous exit.
package shield

import (
	"errors"
	"fmt"
	"sync"

	"securecloud/internal/sim"
)

// Host simulates the untrusted operating system: an in-memory record-
// oriented file system plus a per-syscall kernel cost. Everything the Host
// stores or returns is attacker-controlled in the SecureCloud threat model;
// the fault-injection hooks let tests exercise exactly that.
type Host struct {
	mu     sync.Mutex
	files  map[string][][]byte // path -> records
	fds    map[int]*hostFD
	nextFD int

	// KernelCost is the cycle cost of one syscall inside the host kernel.
	KernelCost sim.Cycles
	ledger     sim.Counter

	// corrupt, if set, may rewrite any record returned by Read. It models
	// a malicious or buggy OS for Iago-attack tests.
	corrupt func(path string, idx int, rec []byte) []byte
}

type hostFD struct {
	path    string
	readPos int
	open    bool
}

// Host errors. These model errno values from the untrusted kernel.
var (
	ErrBadFD    = errors.New("shield: bad file descriptor")
	ErrNoEntry  = errors.New("shield: no such file")
	ErrClosedFD = errors.New("shield: file descriptor closed")
)

// NewHost returns an empty simulated host OS.
func NewHost() *Host {
	return &Host{
		files:      make(map[string][][]byte),
		fds:        make(map[int]*hostFD),
		nextFD:     3, // 0..2 reserved for stdio by convention
		KernelCost: 1500,
	}
}

// SetCorruption installs a record-rewriting hook used by fault-injection
// tests. Pass nil to restore honest behaviour.
func (h *Host) SetCorruption(fn func(path string, idx int, rec []byte) []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.corrupt = fn
}

// SyscallCount returns the number of syscalls serviced.
func (h *Host) SyscallCount() uint64 { return h.ledger.Events("syscall") }

// KernelCycles returns total cycles spent in the simulated kernel.
func (h *Host) KernelCycles() sim.Cycles { return h.ledger.Total() }

func (h *Host) charge() { h.ledger.Charge("syscall", h.KernelCost) }

// Open opens (creating if needed) the file at path and returns a descriptor.
func (h *Host) Open(path string) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.charge()
	if _, ok := h.files[path]; !ok {
		h.files[path] = nil
	}
	fd := h.nextFD
	h.nextFD++
	h.fds[fd] = &hostFD{path: path, open: true}
	return fd, nil
}

// Write appends one record to the file behind fd.
func (h *Host) Write(fd int, rec []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.charge()
	f, err := h.lookup(fd)
	if err != nil {
		return 0, err
	}
	h.files[f.path] = append(h.files[f.path], append([]byte(nil), rec...))
	return len(rec), nil
}

// Read returns the next record from fd, or (nil, io.EOF-like false) when
// exhausted. A corrupt host may return arbitrary bytes.
func (h *Host) Read(fd int) ([]byte, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.charge()
	f, err := h.lookup(fd)
	if err != nil {
		return nil, false, err
	}
	recs := h.files[f.path]
	if f.readPos >= len(recs) {
		return nil, false, nil
	}
	rec := recs[f.readPos]
	if h.corrupt != nil {
		rec = h.corrupt(f.path, f.readPos, append([]byte(nil), rec...))
	}
	f.readPos++
	return rec, true, nil
}

// Close releases fd.
func (h *Host) Close(fd int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.charge()
	f, err := h.lookup(fd)
	if err != nil {
		return err
	}
	f.open = false
	delete(h.fds, fd)
	return nil
}

// Records returns a copy of the raw records stored for path — what an
// attacker inspecting host storage would see.
func (h *Host) Records(path string) [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	recs := h.files[path]
	out := make([][]byte, len(recs))
	for i, r := range recs {
		out[i] = append([]byte(nil), r...)
	}
	return out
}

// DropRecord deletes record idx of path (models truncation by the host).
func (h *Host) DropRecord(path string, idx int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	recs := h.files[path]
	if idx < 0 || idx >= len(recs) {
		return
	}
	h.files[path] = append(recs[:idx:idx], recs[idx+1:]...)
}

func (h *Host) lookup(fd int) (*hostFD, error) {
	f, ok := h.fds[fd]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, fd)
	}
	if !f.open {
		return nil, fmt.Errorf("%w: %d", ErrClosedFD, fd)
	}
	return f, nil
}
