package shield

import (
	"bytes"
	"errors"
	"testing"

	"securecloud/internal/cryptbox"
	"securecloud/internal/enclave"
)

func testEnclave(t *testing.T) *enclave.Enclave {
	t.Helper()
	p := enclave.NewPlatform(enclave.Config{})
	var signer cryptbox.Digest
	e, err := p.ECreate(1<<20, signer)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EAdd([]byte("microservice")); err != nil {
		t.Fatal(err)
	}
	if err := e.EInit(); err != nil {
		t.Fatal(err)
	}
	return e
}

func testKey() cryptbox.Key {
	var k cryptbox.Key
	for i := range k {
		k[i] = byte(i * 3)
	}
	return k
}

func TestUnprotectedWriteReadThroughHost(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	fd, err := s.Open("/tmp/log", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(fd, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Read(fd)
	if err != nil || !ok {
		t.Fatalf("Read: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("got %q", got)
	}
	if err := s.Close(fd); err != nil {
		t.Fatal(err)
	}
}

func TestProtectedStreamRoundTrip(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeAsync)
	k := testKey()
	fd, err := s.Open("/data/meters", &k)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []string{"m1=42.0", "m2=17.3", "m3=0.1"}
	for _, m := range msgs {
		if _, err := s.Write(fd, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, ok, err := s.Read(fd)
		if err != nil || !ok {
			t.Fatalf("Read: ok=%v err=%v", ok, err)
		}
		if string(got) != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	if _, ok, _ := s.Read(fd); ok {
		t.Fatal("read past end of stream")
	}
}

func TestProtectedStreamCiphertextOnHost(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	k := testKey()
	fd, _ := s.Open("/data/secret", &k)
	if _, err := s.Write(fd, []byte("PLAINTEXT-MARKER")); err != nil {
		t.Fatal(err)
	}
	for _, rec := range h.Records("/data/secret") {
		if bytes.Contains(rec, []byte("PLAINTEXT-MARKER")) {
			t.Fatal("plaintext reached the untrusted host")
		}
	}
}

func TestHostTamperingDetected(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	k := testKey()
	fd, _ := s.Open("/f", &k)
	_, _ = s.Write(fd, []byte("record"))
	h.SetCorruption(func(path string, idx int, rec []byte) []byte {
		rec[len(rec)-1] ^= 1
		return rec
	})
	if _, _, err := s.Read(fd); !errors.Is(err, ErrHostMisbehaved) {
		t.Fatalf("tampered record: err = %v, want ErrHostMisbehaved", err)
	}
}

func TestHostReplayDetected(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	k := testKey()
	fd, _ := s.Open("/f", &k)
	_, _ = s.Write(fd, []byte("first"))
	_, _ = s.Write(fd, []byte("second"))
	// Malicious host replays record 0 in place of record 1.
	var first []byte
	h.SetCorruption(func(path string, idx int, rec []byte) []byte {
		if idx == 0 {
			first = append([]byte(nil), rec...)
			return rec
		}
		return first
	})
	if _, _, err := s.Read(fd); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, _, err := s.Read(fd); !errors.Is(err, ErrHostMisbehaved) {
		t.Fatalf("replayed record: err = %v, want ErrHostMisbehaved", err)
	}
}

func TestHostDroppedRecordDetected(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	k := testKey()
	fd, _ := s.Open("/f", &k)
	_, _ = s.Write(fd, []byte("first"))
	_, _ = s.Write(fd, []byte("second"))
	h.DropRecord("/f", 0)
	// The shield expects seq 0 but receives the record sealed as seq 1.
	if _, _, err := s.Read(fd); !errors.Is(err, ErrHostMisbehaved) {
		t.Fatalf("dropped record: err = %v, want ErrHostMisbehaved", err)
	}
}

func TestOversizedHostReturnRejected(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	fd, _ := s.Open("/f", nil)
	_, _ = s.Write(fd, []byte("x"))
	h.SetCorruption(func(path string, idx int, rec []byte) []byte {
		return make([]byte, MaxRecord+1024)
	})
	if _, _, err := s.Read(fd); !errors.Is(err, ErrHostMisbehaved) {
		t.Fatalf("oversized return: err = %v, want ErrHostMisbehaved", err)
	}
}

func TestOversizedWriteRejected(t *testing.T) {
	e := testEnclave(t)
	s := New(e, NewHost(), ModeSync)
	fd, _ := s.Open("/f", nil)
	if _, err := s.Write(fd, make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestBadFDErrors(t *testing.T) {
	e := testEnclave(t)
	s := New(e, NewHost(), ModeSync)
	if _, err := s.Write(99, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write to bad fd: %v", err)
	}
	if _, _, err := s.Read(99); !errors.Is(err, ErrBadFD) {
		t.Fatalf("read from bad fd: %v", err)
	}
	if err := s.Close(99); !errors.Is(err, ErrBadFD) {
		t.Fatalf("close bad fd: %v", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	e := testEnclave(t)
	s := New(e, NewHost(), ModeSync)
	fd, _ := s.Open("/f", nil)
	_ = s.Close(fd)
	if _, err := s.Write(fd, []byte("x")); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestSyncChargesTransitionsAsyncDoesNot(t *testing.T) {
	const calls = 50

	costOf := func(mode CallMode) (transitions uint64) {
		e := testEnclave(t)
		h := NewHost()
		s := New(e, h, mode)
		fd, _ := s.Open("/f", nil)
		before := e.Memory().Breakdown()[enclave.CauseTransition]
		for i := 0; i < calls; i++ {
			if _, err := s.Write(fd, []byte("payload")); err != nil {
				t.Fatal(err)
			}
		}
		after := e.Memory().Breakdown()[enclave.CauseTransition]
		return uint64(after - before)
	}

	syncCost := costOf(ModeSync)
	asyncCost := costOf(ModeAsync)
	if syncCost == 0 {
		t.Fatal("sync mode charged no transitions")
	}
	if asyncCost != 0 {
		t.Fatalf("async mode charged %d transition cycles, want 0", asyncCost)
	}
}

func TestAsyncCheaperThanSyncEndToEnd(t *testing.T) {
	const calls = 200
	run := func(mode CallMode) uint64 {
		e := testEnclave(t)
		s := New(e, NewHost(), mode)
		fd, _ := s.Open("/f", nil)
		e.Memory().ResetAccounting()
		for i := 0; i < calls; i++ {
			if _, err := s.Write(fd, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		return uint64(e.Memory().Cycles())
	}
	sync, async := run(ModeSync), run(ModeAsync)
	if async >= sync {
		t.Fatalf("async (%d cycles) not cheaper than sync (%d cycles)", async, sync)
	}
}

func TestCallsCounted(t *testing.T) {
	e := testEnclave(t)
	s := New(e, NewHost(), ModeSync)
	fd, _ := s.Open("/f", nil)
	_, _ = s.Write(fd, []byte("x"))
	_, _, _ = s.Read(fd)
	_ = s.Close(fd)
	if got := s.Calls(); got != 4 {
		t.Fatalf("Calls = %d, want 4 (open+write+read+close)", got)
	}
}

func TestHostSyscallAccounting(t *testing.T) {
	h := NewHost()
	fd, _ := h.Open("/f")
	_, _ = h.Write(fd, []byte("x"))
	_ = h.Close(fd)
	if h.SyscallCount() != 3 {
		t.Fatalf("SyscallCount = %d, want 3", h.SyscallCount())
	}
	if h.KernelCycles() == 0 {
		t.Fatal("no kernel cycles charged")
	}
}

func TestTwoStreamsIndependentKeys(t *testing.T) {
	e := testEnclave(t)
	h := NewHost()
	s := New(e, h, ModeSync)
	k1, k2 := testKey(), testKey()
	k2[0] ^= 0xFF
	fd1, _ := s.Open("/a", &k1)
	fd2, _ := s.Open("/b", &k2)
	_, _ = s.Write(fd1, []byte("for-a"))
	_, _ = s.Write(fd2, []byte("for-b"))
	got1, _, err1 := s.Read(fd1)
	got2, _, err2 := s.Read(fd2)
	if err1 != nil || err2 != nil {
		t.Fatalf("reads failed: %v %v", err1, err2)
	}
	if string(got1) != "for-a" || string(got2) != "for-b" {
		t.Fatal("stream data crossed")
	}
}
