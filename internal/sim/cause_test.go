package sim

import (
	"sync"
	"testing"
)

func TestRegisterCauseIdempotent(t *testing.T) {
	a := RegisterCause("test-cause-idem")
	b := RegisterCause("test-cause-idem")
	if a != b {
		t.Fatalf("re-registering returned %d then %d", a, b)
	}
	if a.String() != "test-cause-idem" {
		t.Fatalf("Cause.String() = %q", a.String())
	}
	c, ok := LookupCause("test-cause-idem")
	if !ok || c != a {
		t.Fatalf("LookupCause = (%d, %v), want (%d, true)", c, ok, a)
	}
	if _, ok := LookupCause("never-registered-cause"); ok {
		t.Fatal("LookupCause found an unregistered name")
	}
}

func TestRegisterCauseConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	results := make([]Cause, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = RegisterCause("test-cause-concurrent")
		}(i)
	}
	wg.Wait()
	for _, r := range results[1:] {
		if r != results[0] {
			t.Fatal("concurrent registration produced distinct causes")
		}
	}
}

func TestTypedChargeMatchesStringShim(t *testing.T) {
	var typed, shim Counter
	c := RegisterCause("test-typed-vs-shim")
	for i := 0; i < 10; i++ {
		typed.ChargeCause(c, 7)
		shim.Charge("test-typed-vs-shim", 7)
	}
	if typed.Total() != shim.Total() {
		t.Fatalf("totals diverged: typed %d, shim %d", typed.Total(), shim.Total())
	}
	if typed.Cost("test-typed-vs-shim") != shim.CauseCost(c) {
		t.Fatal("cross-API cost queries diverged")
	}
	if typed.CauseEvents(c) != 10 || shim.Events("test-typed-vs-shim") != 10 {
		t.Fatal("event counts diverged")
	}
}

func TestChargeCauseNEquivalentToLoop(t *testing.T) {
	var batched, looped Counter
	c := RegisterCause("test-batched")
	batched.ChargeCauseN(c, 500, 5)
	for i := 0; i < 5; i++ {
		looped.ChargeCause(c, 100)
	}
	if batched.Total() != looped.Total() ||
		batched.CauseCost(c) != looped.CauseCost(c) ||
		batched.CauseEvents(c) != looped.CauseEvents(c) {
		t.Fatalf("ChargeCauseN(500,5) != 5×ChargeCause(100): %d/%d events %d/%d",
			batched.CauseCost(c), looped.CauseCost(c),
			batched.CauseEvents(c), looped.CauseEvents(c))
	}
}

func TestSnapshotNamesChargedCauses(t *testing.T) {
	var a Counter
	x := RegisterCause("test-batch-x")
	y := RegisterCause("test-batch-y")
	a.ChargeCauseN(x, 300, 3)
	a.ChargeCause(y, 40)
	snap := a.Snapshot()
	if snap["test-batch-x"] != 300 || snap["test-batch-y"] != 40 {
		t.Fatalf("Snapshot = %v", snap)
	}
	if _, ok := snap["test-cause-idem"]; ok && a.Events("test-cause-idem") == 0 {
		t.Fatal("Snapshot included a cause never charged on this counter")
	}
}

func TestClockAdvanceToConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(3)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != 24000 {
		t.Fatalf("Now() = %d, want 24000", got)
	}
	c.AdvanceTo(30000)
	if got := c.Now(); got != 30000 {
		t.Fatalf("after AdvanceTo, Now() = %d, want 30000", got)
	}
}

func BenchmarkCounterChargeTyped(b *testing.B) {
	var a Counter
	c := RegisterCause("bench-typed")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ChargeCause(c, 40)
	}
}

func BenchmarkCounterChargeString(b *testing.B) {
	var a Counter
	for i := 0; i < b.N; i++ {
		a.Charge("bench-string", 40)
	}
}

func BenchmarkClockAdvance(b *testing.B) {
	c := NewClock()
	for i := 0; i < b.N; i++ {
		c.Advance(1)
	}
}
