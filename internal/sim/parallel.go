package sim

import (
	"sync"
	"sync/atomic"
)

// ParallelFor runs fn(0..n-1) across at most workers goroutines pulling
// indices from a shared counter — the bounded fan-out used by the sharded
// SCBR matcher, the sharded key/value store, the parallel map/reduce
// engine and the Figure 3 sweep. The calling goroutine is one of the
// workers (only workers-1 are spawned), so a caller with 4 workers costs
// 3 goroutine spawns and the caller's core is never idle. With
// workers <= 1 it degenerates to a plain loop; no goroutines outlive the
// call.
//
// ParallelFor is an execution knob only: callers that need deterministic
// simulated figures must make fn(i) touch disjoint simulated state (e.g.
// one platform per index) or charge through read-only snapshot spans, so
// any interleaving produces the same totals.
func ParallelFor(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for k := 0; k < workers-1; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}
