// Package sim provides the deterministic simulation substrate shared by the
// SecureCloud reproduction: a virtual cycle/time clock, cycle accounting, and
// seeded pseudo-random helpers.
//
// Every performance-sensitive component (the SGX enclave simulator, the SCBR
// broker, the GenPack scheduler) charges costs against a Clock instead of
// reading the wall clock. This makes all experiments reproducible bit-for-bit
// across runs and machines, which is what lets the benchmark harness
// regenerate the paper's figures deterministically.
//
// Accounting is organized around typed Causes: small integers interned once
// per process, indexing fixed-size arrays in Counter. The hot path (the
// enclave memory model charging per-cache-line costs) therefore never hashes
// a string or allocates; the string-keyed Charge/Cost/Events/Snapshot API
// remains as a compatibility shim over the same ledger.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// CPUFrequencyHz is the reference core frequency used to convert simulated
// cycles into simulated wall time. SGX v1 parts (Skylake) shipped around
// 3.4 GHz; the absolute value only scales reported times, never ratios.
const CPUFrequencyHz = 3_400_000_000

// Cycles counts simulated CPU cycles.
type Cycles uint64

// Duration converts a cycle count into simulated wall time.
func (c Cycles) Duration() time.Duration {
	return time.Duration(float64(c) / CPUFrequencyHz * float64(time.Second))
}

// SimMillis reports the cycle count as simulated milliseconds at the
// reference frequency — the unit the orchestration layer's QoS targets and
// adaptation latencies are stated in.
func (c Cycles) SimMillis() float64 {
	return float64(c) * 1000 / CPUFrequencyHz
}

// MillisToCycles converts simulated milliseconds into cycles at the
// reference frequency: the budget conversion for simulated-time control
// loops (a monitoring tick of T sim-ms grants each replica
// MillisToCycles(T) cycles of service).
func MillisToCycles(ms float64) Cycles {
	return Cycles(ms * CPUFrequencyHz / 1000)
}

// String renders the cycle count with its simulated-time equivalent.
func (c Cycles) String() string {
	return fmt.Sprintf("%d cycles (%v)", uint64(c), c.Duration())
}

// Clock is a monotonically advancing virtual clock measured in CPU cycles.
// The zero value is a clock at cycle 0, ready to use. Clock is safe for
// concurrent use; Advance is a single atomic add, so charging cycles never
// serializes unrelated goroutines behind a mutex.
type Clock struct {
	now atomic.Uint64
}

// NewClock returns a clock starting at cycle 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated cycle.
func (c *Clock) Now() Cycles {
	return Cycles(c.now.Load())
}

// Advance moves the clock forward by d cycles and returns the new time.
func (c *Clock) Advance(d Cycles) Cycles {
	return Cycles(c.now.Add(uint64(d)))
}

// AdvanceTo moves the clock forward to cycle t. It panics if t is in the
// past: simulated time never runs backwards.
func (c *Clock) AdvanceTo(t Cycles) {
	for {
		cur := c.now.Load()
		if uint64(t) < cur {
			panic(fmt.Sprintf("sim: AdvanceTo(%d) before now (%d)", uint64(t), cur))
		}
		if c.now.CompareAndSwap(cur, uint64(t)) {
			return
		}
	}
}

// Cause identifies one accounting category (a cache miss, a page fault, an
// enclave transition, ...). Causes are interned process-wide: registering
// the same name twice returns the same Cause, and a Cause indexes directly
// into every Counter's fixed-size ledger.
type Cause uint32

// MaxCauses bounds the number of distinct causes a process may register.
// Causes name event *categories* of the cost model, not event instances, so
// a small fixed bound keeps every Counter a flat pair of arrays.
const MaxCauses = 64

var causeReg struct {
	sync.RWMutex
	byName map[string]Cause
	names  []string
}

// RegisterCause interns name and returns its Cause. It is idempotent and
// safe for concurrent use; it panics if more than MaxCauses distinct names
// are registered (a cost-model programming error, not a runtime condition).
func RegisterCause(name string) Cause {
	causeReg.RLock()
	c, ok := causeReg.byName[name]
	causeReg.RUnlock()
	if ok {
		return c
	}
	causeReg.Lock()
	defer causeReg.Unlock()
	if c, ok := causeReg.byName[name]; ok {
		return c
	}
	if causeReg.byName == nil {
		causeReg.byName = make(map[string]Cause)
	}
	if len(causeReg.names) >= MaxCauses {
		panic(fmt.Sprintf("sim: more than %d causes registered (%q)", MaxCauses, name))
	}
	c = Cause(len(causeReg.names))
	causeReg.names = append(causeReg.names, name)
	causeReg.byName[name] = c
	return c
}

// LookupCause returns the Cause registered under name, if any.
func LookupCause(name string) (Cause, bool) {
	causeReg.RLock()
	defer causeReg.RUnlock()
	c, ok := causeReg.byName[name]
	return c, ok
}

// String returns the name the cause was registered under.
func (c Cause) String() string {
	causeReg.RLock()
	defer causeReg.RUnlock()
	if int(c) < len(causeReg.names) {
		return causeReg.names[c]
	}
	return fmt.Sprintf("Cause(%d)", uint32(c))
}

// registeredCauses returns the number of causes registered so far.
func registeredCauses() int {
	causeReg.RLock()
	defer causeReg.RUnlock()
	return len(causeReg.names)
}

// Counter accumulates per-cause cycle costs: a general-purpose accounting
// ledger for attributing simulated time to causes (cache misses, page
// faults, syscalls, ...). The zero value is ready to use. The ledger is a
// fixed-size array indexed by Cause, so charging is an array add — no
// hashing, no allocation. (The enclave memory model's hot path keeps its
// own platform-mutex-guarded ledger of the same shape; Counter serves the
// standalone users, e.g. the shield host kernel model.)
type Counter struct {
	mu     sync.Mutex
	total  Cycles
	costs  [MaxCauses]Cycles
	events [MaxCauses]uint64
}

// ChargeCause adds cost cycles under the given cause and counts one event.
func (a *Counter) ChargeCause(c Cause, cost Cycles) {
	a.mu.Lock()
	a.total += cost
	a.costs[c] += cost
	a.events[c]++
	a.mu.Unlock()
}

// ChargeCauseN adds total cycles and n events under the given cause in one
// step: the batched equivalent of n ChargeCause calls summing to total.
func (a *Counter) ChargeCauseN(c Cause, total Cycles, n uint64) {
	a.mu.Lock()
	a.total += total
	a.costs[c] += total
	a.events[c] += n
	a.mu.Unlock()
}

// Charge adds cost cycles under the given cause name and counts one event.
// It is the string-keyed compatibility shim over ChargeCause; hot paths
// should register their causes once and use the typed API.
func (a *Counter) Charge(cause string, cost Cycles) {
	a.ChargeCause(RegisterCause(cause), cost)
}

// Total returns the sum of all charged cycles.
func (a *Counter) Total() Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// CauseCost returns the cycles charged under c.
func (a *Counter) CauseCost(c Cause) Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.costs[c]
}

// CauseEvents returns how many times c was charged.
func (a *Counter) CauseEvents(c Cause) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events[c]
}

// Cost returns the cycles charged under the named cause.
func (a *Counter) Cost(cause string) Cycles {
	c, ok := LookupCause(cause)
	if !ok {
		return 0
	}
	return a.CauseCost(c)
}

// Events returns how many times the named cause was charged.
func (a *Counter) Events(cause string) uint64 {
	c, ok := LookupCause(cause)
	if !ok {
		return 0
	}
	return a.CauseEvents(c)
}

// Reset zeroes the ledger.
func (a *Counter) Reset() {
	a.mu.Lock()
	a.total = 0
	a.costs = [MaxCauses]Cycles{}
	a.events = [MaxCauses]uint64{}
	a.mu.Unlock()
}

// Snapshot returns a copy of the per-cause cost map, keyed by cause name.
// Only causes charged at least once on this counter appear.
func (a *Counter) Snapshot() map[string]Cycles {
	n := registeredCauses()
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]Cycles)
	for i := 0; i < n; i++ {
		if a.events[i] > 0 {
			out[Cause(i).String()] = a.costs[i]
		}
	}
	return out
}

// NewRand returns a deterministic pseudo-random source for the given seed.
// All stochastic workload generators in the repository derive their
// randomness from here so experiments replay identically.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf returns a Zipf-distributed generator over [0, n) with exponent s>1.
// Content-based workloads (SCBR attribute popularity, smart-grid topic
// popularity) are classically Zipfian.
func Zipf(r *rand.Rand, s float64, n uint64) *rand.Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return rand.NewZipf(r, s, 1, n-1)
}
