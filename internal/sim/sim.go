// Package sim provides the deterministic simulation substrate shared by the
// SecureCloud reproduction: a virtual cycle/time clock, cycle accounting, and
// seeded pseudo-random helpers.
//
// Every performance-sensitive component (the SGX enclave simulator, the SCBR
// broker, the GenPack scheduler) charges costs against a Clock instead of
// reading the wall clock. This makes all experiments reproducible bit-for-bit
// across runs and machines, which is what lets the benchmark harness
// regenerate the paper's figures deterministically.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// CPUFrequencyHz is the reference core frequency used to convert simulated
// cycles into simulated wall time. SGX v1 parts (Skylake) shipped around
// 3.4 GHz; the absolute value only scales reported times, never ratios.
const CPUFrequencyHz = 3_400_000_000

// Cycles counts simulated CPU cycles.
type Cycles uint64

// Duration converts a cycle count into simulated wall time.
func (c Cycles) Duration() time.Duration {
	return time.Duration(float64(c) / CPUFrequencyHz * float64(time.Second))
}

// String renders the cycle count with its simulated-time equivalent.
func (c Cycles) String() string {
	return fmt.Sprintf("%d cycles (%v)", uint64(c), c.Duration())
}

// Clock is a monotonically advancing virtual clock measured in CPU cycles.
// The zero value is a clock at cycle 0, ready to use. Clock is safe for
// concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Cycles
}

// NewClock returns a clock starting at cycle 0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated cycle.
func (c *Clock) Now() Cycles {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d cycles and returns the new time.
func (c *Clock) Advance(d Cycles) Cycles {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to cycle t. It panics if t is in the
// past: simulated time never runs backwards.
func (c *Clock) AdvanceTo(t Cycles) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < c.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) before now (%d)", t, c.now))
	}
	c.now = t
}

// Counter accumulates named cycle costs. It is the accounting ledger used by
// the enclave memory model to attribute simulated time to causes (cache
// misses, page faults, transitions, ...). The zero value is ready to use.
type Counter struct {
	mu     sync.Mutex
	total  Cycles
	byName map[string]Cycles
	events map[string]uint64
}

// Charge adds cost cycles under the given cause and counts one event.
func (a *Counter) Charge(cause string, cost Cycles) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.byName == nil {
		a.byName = make(map[string]Cycles)
		a.events = make(map[string]uint64)
	}
	a.total += cost
	a.byName[cause] += cost
	a.events[cause]++
}

// Total returns the sum of all charged cycles.
func (a *Counter) Total() Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Cost returns the cycles charged under cause.
func (a *Counter) Cost(cause string) Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.byName[cause]
}

// Events returns how many times cause was charged.
func (a *Counter) Events(cause string) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.events[cause]
}

// Reset zeroes the ledger.
func (a *Counter) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total = 0
	a.byName = make(map[string]Cycles)
	a.events = make(map[string]uint64)
}

// Snapshot returns a copy of the per-cause cost map.
func (a *Counter) Snapshot() map[string]Cycles {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]Cycles, len(a.byName))
	for k, v := range a.byName {
		out[k] = v
	}
	return out
}

// NewRand returns a deterministic pseudo-random source for the given seed.
// All stochastic workload generators in the repository derive their
// randomness from here so experiments replay identically.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf returns a Zipf-distributed generator over [0, n) with exponent s>1.
// Content-based workloads (SCBR attribute popularity, smart-grid topic
// popularity) are classically Zipfian.
func Zipf(r *rand.Rand, s float64, n uint64) *rand.Zipf {
	if s <= 1 {
		s = 1.0001
	}
	return rand.NewZipf(r, s, 1, n-1)
}
