package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("zero clock Now() = %d, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if got := c.Advance(10); got != 10 {
		t.Fatalf("Advance(10) = %d, want 10", got)
	}
	if got := c.Advance(5); got != 15 {
		t.Fatalf("second Advance = %d, want 15", got)
	}
	if got := c.Now(); got != 15 {
		t.Fatalf("Now() = %d, want 15", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.AdvanceTo(100)
	if got := c.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(50)
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := NewClock()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != goroutines*per {
		t.Fatalf("concurrent Now() = %d, want %d", got, goroutines*per)
	}
}

func TestCyclesDuration(t *testing.T) {
	// One full second of cycles must convert to ~1s.
	c := Cycles(CPUFrequencyHz)
	d := c.Duration()
	if d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("Duration of %d cycles = %v, want ~1s", c, d)
	}
}

func TestCounterChargeAndQuery(t *testing.T) {
	var a Counter
	a.Charge("fault", 100)
	a.Charge("fault", 50)
	a.Charge("miss", 7)
	if got := a.Total(); got != 157 {
		t.Fatalf("Total = %d, want 157", got)
	}
	if got := a.Cost("fault"); got != 150 {
		t.Fatalf("Cost(fault) = %d, want 150", got)
	}
	if got := a.Events("fault"); got != 2 {
		t.Fatalf("Events(fault) = %d, want 2", got)
	}
	if got := a.Events("absent"); got != 0 {
		t.Fatalf("Events(absent) = %d, want 0", got)
	}
}

func TestCounterReset(t *testing.T) {
	var a Counter
	a.Charge("x", 9)
	a.Reset()
	if a.Total() != 0 || a.Cost("x") != 0 || a.Events("x") != 0 {
		t.Fatal("Reset did not clear the ledger")
	}
}

func TestCounterSnapshotIsCopy(t *testing.T) {
	var a Counter
	a.Charge("x", 3)
	snap := a.Snapshot()
	snap["x"] = 999
	if got := a.Cost("x"); got != 3 {
		t.Fatalf("mutating snapshot changed counter: Cost(x) = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var a Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Charge("c", 2)
			}
		}()
	}
	wg.Wait()
	if got := a.Total(); got != 16000 {
		t.Fatalf("concurrent Total = %d, want 16000", got)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(1)
	z := Zipf(r, 1.2, 1000)
	counts := make(map[uint64]int)
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[z.Uint64()]++
	}
	// Rank-0 must dominate rank-10 under any Zipf exponent > 1.
	if counts[0] <= counts[10] {
		t.Fatalf("Zipf not skewed: count[0]=%d count[10]=%d", counts[0], counts[10])
	}
}

func TestZipfDegenerateExponent(t *testing.T) {
	// s <= 1 must be clamped rather than panic (rand.NewZipf requires s > 1).
	r := NewRand(1)
	z := Zipf(r, 0.5, 10)
	if z == nil {
		t.Fatal("Zipf returned nil for clamped exponent")
	}
	_ = z.Uint64()
}

func TestPropClockAdvanceSums(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		var want Cycles
		for _, s := range steps {
			want += Cycles(s)
			c.Advance(Cycles(s))
		}
		return c.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropCounterTotalEqualsSumOfCauses(t *testing.T) {
	f := func(costs []uint16) bool {
		var a Counter
		for i, cst := range costs {
			cause := "a"
			if i%2 == 1 {
				cause = "b"
			}
			a.Charge(cause, Cycles(cst))
		}
		return a.Total() == a.Cost("a")+a.Cost("b")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
